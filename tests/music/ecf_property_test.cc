// Randomized state-space exploration with the ECF invariants checked
// continuously — the executable analogue of the paper's Alloy verification
// (§V), replacing bounded exhaustive enumeration with bounded randomized
// exploration over many seeds at small scopes (the small-scope hypothesis).
//
// Each run drives several clients through critical sections on a few shared
// keys while a chaos process injects the §III failure modes: client crashes
// mid-section (abandonment), crashes mid-put, forced releases of live
// holders (false failure detection), store-replica crashes/restarts, MUSIC-
// replica crashes, and short network partitions.  Every observable client
// transition feeds the EcfChecker, which holds the system to the
// Exclusivity and Latest-State properties (with the §III non-deterministic
// true-value refinement).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/world.h"
#include "verify/oracle.h"

namespace music::verify {
namespace {

using test::MusicWorld;
using test::WorldOptions;

constexpr int kKeys = 2;
constexpr int kClients = 4;

Key key_of(int i) { return "key" + std::to_string(i); }

/// One client's life: repeatedly run critical sections; sometimes "crash"
/// (abandon the section without releasing).
sim::Task<void> client_life(MusicWorld& w, CheckedClient c, int id,
                            sim::Time end, uint64_t seed) {
  sim::Rng rng(seed);
  while (w.sim.now() < end) {
    Key key = key_of(static_cast<int>(rng.next_u64() % kKeys));
    auto ref = co_await c.create_lock_ref(key);
    if (!ref.ok()) continue;
    if (rng.chance(0.1)) continue;  // die after createLockRef: orphan ref
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    if (!acq.ok()) {
      co_await c.inner().remove_lock_ref(key, ref.value());
      continue;
    }
    int ops = static_cast<int>(1 + rng.next_u64() % 3);
    bool alive = true;
    for (int i = 0; i < ops && alive; ++i) {
      if (rng.chance(0.5)) {
        auto g = co_await c.critical_get(key, ref.value());
        if (g.status() == OpStatus::NotLockHolder) alive = false;
      } else {
        Value v("c" + std::to_string(id) + "-" +
                std::to_string(w.sim.now()) + "-" + std::to_string(i));
        auto p = co_await c.critical_put(key, ref.value(), v);
        if (p.status() == OpStatus::NotLockHolder) alive = false;
      }
      if (rng.chance(0.08)) {
        alive = false;  // crash mid-section: never released
      }
    }
    if (alive && !rng.chance(0.1)) {
      co_await c.release_lock(key, ref.value());
    }
    co_await sim::sleep_for(w.sim, rng.uniform_int(0, sim::ms(200)));
  }
}

/// Chaos: forced releases (the failure detector's role, reported to the
/// checker), backend crashes/restarts, brief partitions.
sim::Task<void> chaos_life(MusicWorld& w, CheckedClient c, sim::Time end,
                           uint64_t seed) {
  sim::Rng rng(seed);
  while (w.sim.now() < end) {
    co_await sim::sleep_for(w.sim, rng.uniform_int(sim::sec(2), sim::sec(6)));
    double dice = rng.uniform_real(0, 1);
    if (dice < 0.5) {
      // Preempt whatever currently holds a random key (possibly a live
      // holder: false failure detection).
      Key key = key_of(static_cast<int>(rng.next_u64() % kKeys));
      auto peek = co_await w.locks.peek_quorum(
          w.store.replica_at_site(static_cast<int>(rng.next_u64() % 3)), key);
      if (peek.ok() && peek.value().head.has_value()) {
        co_await c.forced_release(key, *peek.value().head);
      }
    } else if (dice < 0.75) {
      // Crash one store replica briefly (quorum stays available).
      int victim = static_cast<int>(rng.next_u64() %
                                    static_cast<uint64_t>(w.store.num_replicas()));
      w.store.replica(victim).set_down(true);
      co_await sim::sleep_for(w.sim, rng.uniform_int(sim::ms(500), sim::sec(3)));
      w.store.replica(victim).set_down(false);
    } else if (dice < 0.9) {
      // Short single-site partition.
      int site = static_cast<int>(rng.next_u64() % 3);
      w.net.partition_sites({site}, {(site + 1) % 3, (site + 2) % 3});
      co_await sim::sleep_for(w.sim, rng.uniform_int(sim::ms(500), sim::sec(2)));
      w.net.heal_partition();
    } else {
      // Crash a MUSIC replica briefly.
      int victim = static_cast<int>(rng.next_u64() % 3);
      w.replica(victim).set_down(true);
      co_await sim::sleep_for(w.sim, rng.uniform_int(sim::ms(500), sim::sec(2)));
      w.replica(victim).set_down(false);
    }
  }
}

/// Samples the paper's Critical-Section Invariant at the physical store:
/// whenever the oracle deems a key's truth stable, the data store must be
/// *defined* (SIV-A) as exactly that value.
sim::Task<void> defined_sampler(MusicWorld& w, EcfChecker& checker,
                                sim::Time end, int* checks,
                                int* violations) {
  while (w.sim.now() < end) {
    co_await sim::sleep_for(w.sim, sim::sec(3));
    for (int k = 0; k < kKeys; ++k) {
      Key key = key_of(k);
      auto truth = checker.stable_truth(key, sim::sec(2));
      if (!truth) continue;
      auto defined = data_store_defined(w.store, key);
      ++*checks;
      if (!defined.defined || !defined.value || !(*defined.value == *truth)) {
        ++*violations;
        ADD_FAILURE() << "Critical-Section Invariant: store not defined as "
                      << "the stable truth '" << truth->data << "' for "
                      << key << " at t=" << w.sim.now();
      }
    }
  }
}

class EcfProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EcfProperty, InvariantsHoldUnderRandomizedFailures) {
  WorldOptions opt;
  opt.seed = GetParam();
  opt.clients_per_site = 2;  // 6 clients total; we use 4 + 1 chaos
  MusicWorld w(opt);
  EcfChecker checker(w.sim);
  checker.set_lenient_stale_grants(true);

  sim::Time end = sim::sec(90);
  for (int i = 0; i < kClients; ++i) {
    sim::spawn(w.sim, client_life(w, CheckedClient(w.client(static_cast<size_t>(i)), checker),
                                  i, end, opt.seed * 1000 + static_cast<uint64_t>(i)));
  }
  sim::spawn(w.sim, chaos_life(w, CheckedClient(w.client(4), checker), end,
                               opt.seed * 7777));
  int defined_checks = 0, defined_violations = 0;
  sim::spawn(w.sim, defined_sampler(w, checker, end, &defined_checks,
                                    &defined_violations));
  // Run past `end` so in-flight operations settle.
  w.sim.run_until(end + sim::sec(120));

  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_EQ(defined_violations, 0);
  EXPECT_GT(defined_checks, 0) << "sampler never found a stable window";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcfProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

class EcfFailureFree : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EcfFailureFree, StrictInvariantsHoldWithoutFailures) {
  WorldOptions opt;
  opt.seed = GetParam();
  opt.clients_per_site = 2;
  MusicWorld w(opt);
  EcfChecker checker(w.sim);  // strict mode

  sim::Time end = sim::sec(60);
  for (int i = 0; i < kClients; ++i) {
    // Reuse client_life but with a seed stream that never rolls a "crash":
    // simpler: run plain sections inline.
    sim::spawn(w.sim, [](MusicWorld& world, CheckedClient c, int id,
                         sim::Time until, uint64_t seed) -> sim::Task<void> {
      sim::Rng rng(seed);
      while (world.sim.now() < until) {
        Key key = key_of(static_cast<int>(rng.next_u64() % kKeys));
        auto ref = co_await c.create_lock_ref(key);
        if (!ref.ok()) continue;
        auto acq = co_await c.acquire_lock_blocking(key, ref.value());
        if (!acq.ok()) {
          co_await c.inner().remove_lock_ref(key, ref.value());
          continue;
        }
        auto g = co_await c.critical_get(key, ref.value());
        (void)g;
        Value v("c" + std::to_string(id) + "@" + std::to_string(world.sim.now()));
        co_await c.critical_put(key, ref.value(), v);
        co_await c.release_lock(key, ref.value());
        co_await sim::sleep_for(world.sim, rng.uniform_int(0, sim::ms(100)));
      }
    }(w, CheckedClient(w.client(static_cast<size_t>(i)), checker), i, end,
      opt.seed * 31 + static_cast<uint64_t>(i)));
  }
  // No chaos, but orphan refs from LWT replay retries still need collection.
  w.replica(0).start_failure_detector();
  w.sim.run_until(end + sim::sec(60));
  EXPECT_TRUE(checker.ok()) << checker.report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcfFailureFree,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace music::verify
