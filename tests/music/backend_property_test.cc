// ECF property runs over the Raft lock backend, plus cross-cutting
// determinism checks.  MUSIC's guarantees must be independent of the lock
// substrate (LWT vs Raft) — the LockBackend abstraction is only sound if
// the oracle holds over both.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/session.h"
#include "lockstore/raft_lockstore.h"
#include "util/world.h"
#include "verify/oracle.h"

namespace music::verify {
namespace {

struct RaftBackedWorld {
  sim::Simulation sim;
  sim::Network net;
  ds::StoreCluster store;
  raftkv::RaftCluster raft;
  ls::RaftLockStore locks;
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  std::vector<std::unique_ptr<core::MusicClient>> clients;

  explicit RaftBackedWorld(uint64_t seed)
      : sim(seed),
        net(sim,
            [] {
              sim::NetworkConfig c;
              c.profile = sim::LatencyProfile::profile_lus();
              return c;
            }()),
        store(sim, net, ds::StoreConfig{}, {0, 1, 2}),
        raft(sim, net, raftkv::RaftConfig{}, {0, 1, 2}),
        locks(raft) {
    raft.start();
    raft.wait_for_leader();
    core::MusicConfig mc;
    mc.holder_timeout = sim::sec(6);
    mc.fd_interval = sim::sec(1);
    for (int site = 0; site < 3; ++site) {
      replicas.push_back(
          std::make_unique<core::MusicReplica>(store, locks, mc, site));
      // No built-in failure detector here: preemptions must flow through
      // the CheckedClient so the oracle can account for them; a janitor
      // coroutine below plays the detector's role.
    }
    for (int i = 0; i < 4; ++i) {
      int site = i % 3;
      std::vector<core::MusicReplica*> prefs{replicas[static_cast<size_t>(site)].get()};
      for (int j = 0; j < 3; ++j) {
        if (j != site) prefs.push_back(replicas[static_cast<size_t>(j)].get());
      }
      clients.push_back(std::make_unique<core::MusicClient>(
          sim, net, prefs, core::ClientConfig{}, site));
    }
  }
};

sim::Task<void> raft_client_life(RaftBackedWorld& w, CheckedClient c, int id,
                                 sim::Time end, uint64_t seed) {
  sim::Rng rng(seed);
  while (w.sim.now() < end) {
    Key key = "key" + std::to_string(rng.next_u64() % 2);
    auto ref = co_await c.create_lock_ref(key);
    if (!ref.ok()) continue;
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    if (!acq.ok()) {
      co_await c.inner().remove_lock_ref(key, ref.value());
      continue;
    }
    bool alive = true;
    for (int i = 0; i < 2 && alive; ++i) {
      if (rng.chance(0.5)) {
        auto g = co_await c.critical_get(key, ref.value());
        if (g.status() == OpStatus::NotLockHolder) alive = false;
      } else {
        auto p = co_await c.critical_put(
            key, ref.value(),
            Value("c" + std::to_string(id) + "@" + std::to_string(w.sim.now())));
        if (p.status() == OpStatus::NotLockHolder) alive = false;
      }
      if (rng.chance(0.08)) alive = false;  // crash mid-section
    }
    if (alive && !rng.chance(0.1)) {
      co_await c.release_lock(key, ref.value());
    }
    co_await sim::sleep_for(w.sim, rng.uniform_int(0, sim::ms(200)));
  }
}

class RaftBackendProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaftBackendProperty, EcfInvariantsHoldOverTheRaftLockStore) {
  RaftBackedWorld w(GetParam());
  EcfChecker checker(w.sim);
  checker.set_lenient_stale_grants(true);
  sim::Time end = sim::sec(60);
  for (int i = 0; i < 4; ++i) {
    sim::spawn(w.sim,
               raft_client_life(w, CheckedClient(*w.clients[static_cast<size_t>(i)], checker),
                                i, end, GetParam() * 191 + static_cast<uint64_t>(i)));
  }
  // Janitor: plays the failure detector, preempting stuck heads through a
  // CheckedClient so the oracle sees every forced release.
  sim::spawn(w.sim, [](RaftBackedWorld& world, CheckedClient c,
                       sim::Time until) -> sim::Task<void> {
    std::map<Key, std::pair<LockRef, sim::Time>> seen;
    while (world.sim.now() < until + sim::sec(90)) {
      co_await sim::sleep_for(world.sim, sim::sec(2));
      for (int k = 0; k < 2; ++k) {
        Key key = "key" + std::to_string(k);
        auto p = co_await world.locks.backend_peek(0, key);
        if (!p.ok() || !p.value().head.has_value()) {
          seen.erase(key);
          continue;
        }
        LockRef head = *p.value().head;
        auto it = seen.find(key);
        if (it == seen.end() || it->second.first != head) {
          seen[key] = {head, world.sim.now()};
        } else if (world.sim.now() - it->second.second > sim::sec(6)) {
          co_await c.forced_release(key, head);
          seen.erase(key);
        }
      }
    }
  }(w, CheckedClient(*w.clients[3], checker), end));
  // Chaos: bounce one store replica and one raft follower.
  w.sim.schedule(sim::sec(15), [&] { w.store.replica(1).set_down(true); });
  w.sim.schedule(sim::sec(19), [&] { w.store.replica(1).set_down(false); });
  w.sim.schedule(sim::sec(30), [&] {
    // Avoid killing the raft leader (leader failover is covered elsewhere;
    // here the focus is MUSIC semantics under backend hiccups).
    for (int i = 0; i < 3; ++i) {
      if (w.raft.node(i).role() != raftkv::Role::Leader) {
        w.raft.node(i).set_down(true);
        w.sim.schedule(sim::sec(4), [&, i] { w.raft.node(i).set_down(false); });
        break;
      }
    }
  });
  w.sim.run_until(end + sim::sec(120));
  EXPECT_TRUE(checker.ok()) << checker.report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftBackendProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  // The whole stack — network jitter, service queues, retries, elections —
  // must be a pure function of the seed.  Two runs of a nontrivial scenario
  // must agree event-for-event.
  auto run = [](uint64_t seed) {
    test::WorldOptions opt;
    opt.seed = seed;
    opt.clients_per_site = 2;
    test::MusicWorld w(opt);
    int done = 0;
    for (int i = 0; i < 6; ++i) {
      sim::spawn(w.sim, [](test::MusicWorld& world, int ci, int& d) -> sim::Task<void> {
        auto& c = world.client(static_cast<size_t>(ci));
        for (int r = 0; r < 3; ++r) {
          auto body = [&](LockRef ref) -> sim::Task<Status> {
            co_return co_await c.critical_put(
                "k" + std::to_string(ci % 2), ref, Value("v"));
          };
          co_await c.with_lock("k" + std::to_string(ci % 2), body);
        }
        ++d;
      }(w, i, done));
    }
    w.sim.run_until(sim::sec(200));
    return std::tuple<uint64_t, uint64_t, sim::Time, int>(
        w.sim.events_run(), w.net.messages_sent(), w.sim.now(), done);
  };
  auto a = run(424242);
  auto b = run(424242);
  EXPECT_EQ(a, b);
  auto c = run(424243);
  EXPECT_NE(std::get<1>(a), 0u);
  // A different seed almost surely differs in message count.
  EXPECT_NE(std::get<1>(a), std::get<1>(c));
}

}  // namespace
}  // namespace music::verify
