// Unit tests for par::run_worlds: index-keyed results, thread-count
// invariance over real simulation worlds, and exception propagation.
#include "par/par.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace music::par {
namespace {

TEST(ParRunWorlds, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(default_threads(), 1u);
}

TEST(ParRunWorlds, EmptyInputYieldsEmptyOutput) {
  std::vector<int> none;
  auto out = run_worlds(none, [](int v) { return v; });
  EXPECT_TRUE(out.empty());
}

TEST(ParRunWorlds, ResultsAreKeyedByIndexNotCompletionOrder) {
  // Heavier work at the front: with several workers, later configs finish
  // first, but the output order must follow the input order regardless.
  std::vector<int> configs;
  for (int i = 0; i < 32; ++i) configs.push_back(i);
  auto out = run_worlds(
      configs,
      [](int cfg) {
        volatile uint64_t sink = 0;
        for (int spin = 0; spin < (32 - cfg) * 20000; ++spin) sink = sink + 1;
        return cfg * 10;
      },
      4);
  ASSERT_EQ(out.size(), configs.size());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i * 10);
  }
}

/// One simulated world: seeded rng draws through a running event loop.
/// Returns a value that depends on every draw and on event ordering.
uint64_t run_world(uint64_t seed) {
  sim::Simulation s(seed);
  uint64_t acc = 0;
  for (int i = 0; i < 50; ++i) {
    s.schedule(s.rng().uniform_int(0, 1000), [&s, &acc] {
      acc = acc * 1099511628211ull +
            static_cast<uint64_t>(s.rng().uniform_int(0, 1 << 30)) +
            static_cast<uint64_t>(s.now());
    });
  }
  s.run_until_idle();
  return acc;
}

TEST(ParRunWorlds, OutputIsThreadCountInvariant) {
  std::vector<uint64_t> seeds;
  for (uint64_t i = 1; i <= 24; ++i) seeds.push_back(i);
  auto sequential = run_worlds(seeds, run_world, 1);
  auto parallel4 = run_worlds(seeds, run_world, 4);
  auto parallel_default = run_worlds(seeds, run_world);
  EXPECT_EQ(sequential, parallel4);
  EXPECT_EQ(sequential, parallel_default);
  // Distinct seeds produce distinct worlds (sanity: the fingerprint isn't
  // degenerate).
  EXPECT_NE(sequential[0], sequential[1]);
}

TEST(ParRunWorlds, LowestIndexExceptionPropagates) {
  std::vector<int> configs{0, 1, 2, 3, 4, 5, 6, 7};
  auto body = [](int cfg) -> int {
    if (cfg == 3 || cfg == 6) {
      std::string msg = "world ";
      msg += std::to_string(cfg);
      throw std::runtime_error(msg);
    }
    return cfg;
  };
  for (size_t threads : {size_t{1}, size_t{4}}) {
    try {
      run_worlds(configs, body, threads);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "world 3");  // lowest index wins, any threads
    }
  }
}

}  // namespace
}  // namespace music::par
