// Wire-version negotiation and cross-version codec tests.
//
// Three layers of protection for rolling upgrades:
//   1. negotiate() property tests over [min,max] range pairs — overlap,
//      disjoint, inverted, and unknown all-future peers;
//   2. the Hello/Goodbye handshake frames parse strictly and Hello stays at
//      the v1 layout forever (any implementation can read it pre-agreement);
//   3. byte-for-byte goldens pinning the v1 frame layout — if any of these
//      change, old binaries can no longer talk to new ones and the change
//      must instead ship as a NEW version (docs/TRANSPORT.md playbook).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>

#include "wire/codec.h"
#include "wire/messages.h"

namespace music::wire {
namespace {

std::string to_hex(const std::string& s) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (unsigned char c : s) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

// ---- negotiate(): the state machine that pins a connection version. --------

TEST(Negotiate, PicksHighestCommonVersion) {
  // Identical ranges.
  EXPECT_EQ(negotiate(1, 2, 1, 2), std::optional<uint8_t>(2));
  // Old peer caps the connection.
  EXPECT_EQ(negotiate(1, 2, 1, 1), std::optional<uint8_t>(1));
  EXPECT_EQ(negotiate(1, 1, 1, 2), std::optional<uint8_t>(1));
  // Future peer with overlap: we top out at our own max.
  EXPECT_EQ(negotiate(1, 2, 2, 9), std::optional<uint8_t>(2));
  // Single-point overlap at the bottom.
  EXPECT_EQ(negotiate(1, 1, 1, 9), std::optional<uint8_t>(1));
  // Degenerate single-version ranges.
  EXPECT_EQ(negotiate(2, 2, 2, 2), std::optional<uint8_t>(2));
}

TEST(Negotiate, RejectsDisjointRanges) {
  // An all-future peer ([5,9] against [1,2]): no common version.  This is
  // the "unknown future versions" case — the handshake must fail cleanly,
  // not guess.
  EXPECT_EQ(negotiate(1, 2, 5, 9), std::nullopt);
  EXPECT_EQ(negotiate(5, 9, 1, 2), std::nullopt);
  // Adjacent but non-overlapping.
  EXPECT_EQ(negotiate(1, 1, 2, 2), std::nullopt);
}

TEST(Negotiate, RejectsInvertedRanges) {
  EXPECT_EQ(negotiate(2, 1, 1, 2), std::nullopt);
  EXPECT_EQ(negotiate(1, 2, 9, 5), std::nullopt);
  EXPECT_EQ(negotiate(3, 1, 9, 5), std::nullopt);
}

TEST(Negotiate, FuzzProperties) {
  // Property sweep over random range pairs: when negotiate succeeds the
  // result lies inside BOTH ranges and equals min(local_max, remote_max);
  // it succeeds exactly when both ranges are well-formed and overlap; and
  // it is symmetric (both ends of a connection pin the same version).
  std::mt19937_64 rng(0x5EED9);
  for (int iter = 0; iter < 20000; ++iter) {
    uint8_t lmin = static_cast<uint8_t>(rng() % 12);
    uint8_t lmax = static_cast<uint8_t>(rng() % 12);
    uint8_t rmin = static_cast<uint8_t>(rng() % 12);
    uint8_t rmax = static_cast<uint8_t>(rng() % 12);
    auto got = negotiate(lmin, lmax, rmin, rmax);
    auto mirrored = negotiate(rmin, rmax, lmin, lmax);
    EXPECT_EQ(got, mirrored) << "asymmetric negotiation";
    bool valid = lmin <= lmax && rmin <= rmax;
    bool overlap = valid && std::max(lmin, rmin) <= std::min(lmax, rmax);
    if (!overlap) {
      EXPECT_EQ(got, std::nullopt);
      continue;
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_GE(*got, lmin);
    EXPECT_LE(*got, lmax);
    EXPECT_GE(*got, rmin);
    EXPECT_LE(*got, rmax);
    EXPECT_EQ(*got, std::min(lmax, rmax)) << "not the highest common version";
  }
}

// ---- Hello: the advertisement frame. ---------------------------------------

TEST(Hello, RoundTripsAndStaysAtV1Layout) {
  Hello h;
  h.min = 1;
  h.max = 7;
  h.features = 0xDEADBEEF;
  h.node = 42;
  std::string buf = encode_hello(h);
  // The forever-rule: Hello is version-1 framed with zero flags and req_id
  // 0, whatever range it advertises, so ANY implementation can parse it
  // before a version is agreed.
  EXPECT_EQ(static_cast<uint8_t>(buf[4]), 1);
  EXPECT_EQ(buf[6], 0);
  EXPECT_EQ(buf[7], 0);
  FrameView fv;
  ASSERT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::Ok);
  EXPECT_EQ(fv.type, FrameType::Hello);
  EXPECT_EQ(fv.req_id, 0u);
  auto parsed = parse_hello(fv.payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->min, h.min);
  EXPECT_EQ(parsed->max, h.max);
  EXPECT_EQ(parsed->features, h.features);
  EXPECT_EQ(parsed->node, h.node);
}

TEST(Hello, ParsesUnderAReaderPinnedToAnyVersion) {
  // A reader that has already pinned v2 (min_version raised) must still
  // peel a v1 Hello: reconnect handshakes race with version pinning and
  // the Hello is the one frame that may always arrive below the floor.
  std::string buf = encode_hello(Hello{});
  PeelLimits pinned{2, 2, kMaxFrameBytes};
  FrameView fv;
  ASSERT_EQ(peel_frame(buf.data(), buf.size(), fv, pinned), FrameStatus::Ok);
  EXPECT_EQ(fv.type, FrameType::Hello);
}

TEST(Hello, RejectsMalformedAdvertisements) {
  std::string buf = encode_hello(Hello{});
  FrameView fv;
  ASSERT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::Ok);
  std::string payload(fv.payload);

  {  // Wrong magic: not our protocol at all.
    std::string p = payload;
    p[0] = 'X';
    EXPECT_FALSE(parse_hello(p).has_value());
  }
  for (size_t n = 0; n < payload.size(); ++n) {  // Truncation.
    EXPECT_FALSE(parse_hello(payload.substr(0, n)).has_value()) << "prefix " << n;
  }
  {  // Trailing garbage.
    std::string p = payload + "Z";
    EXPECT_FALSE(parse_hello(p).has_value());
  }
  {  // Inverted range is malformed on its face.
    std::string p = payload;
    p[4] = 5;  // min
    p[5] = 2;  // max
    EXPECT_FALSE(parse_hello(p).has_value());
  }
}

// ---- Goodbye: the graceful-drain frame (v2+). ------------------------------

TEST(Goodbye, RoundTripsBothReasons) {
  for (GoodbyeReason reason : {GoodbyeReason::Shutdown, GoodbyeReason::Restart}) {
    std::string buf = encode_goodbye(reason);
    EXPECT_EQ(static_cast<uint8_t>(buf[4]), 2);  // a v2 frame
    FrameView fv;
    ASSERT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::Ok);
    EXPECT_EQ(fv.type, FrameType::Goodbye);
    auto parsed = parse_goodbye(fv.payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, reason);
  }
}

TEST(Goodbye, RejectedByAV1OnlyReader) {
  // A v1-pinned connection can never see a Goodbye: the frame is stamped
  // v2 and the reader's window stops at 1.
  std::string buf = encode_goodbye(GoodbyeReason::Shutdown);
  PeelLimits v1_only{1, 1, kMaxFrameBytes};
  FrameView fv;
  EXPECT_EQ(peel_frame(buf.data(), buf.size(), fv, v1_only), FrameStatus::Bad);
}

TEST(Goodbye, RejectsUnknownReasonsAndGarbage) {
  std::string buf = encode_goodbye(GoodbyeReason::Shutdown);
  FrameView fv;
  ASSERT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::Ok);
  std::string payload(fv.payload);
  payload[0] = 99;
  EXPECT_FALSE(parse_goodbye(payload).has_value());
  EXPECT_FALSE(parse_goodbye("").has_value());
  EXPECT_FALSE(parse_goodbye(std::string(fv.payload) + "x").has_value());
}

// ---- v2 semantics: the flags field becomes a feature bitmap. ---------------

TEST(CrossVersion, V2CarriesFlagBitmapV1CannotContainIt) {
  Request r(Request::Op::CriticalPut, "k", LockRef{1}, Value("v", 1));
  // v2 frame with known feature bits: peels, and the bits survive.
  std::string v2 = encode_request(7, r, 2, kFlagRetry | kFlagDraining);
  FrameView fv;
  ASSERT_EQ(peel_frame(v2.data(), v2.size(), fv), FrameStatus::Ok);
  EXPECT_EQ(fv.version, 2);
  EXPECT_EQ(fv.flags, kFlagRetry | kFlagDraining);
  // The payload layout is identical across versions: same parser, same
  // message (this is what lets one serve path handle both).
  auto parsed = parse_request(fv.payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key, r.key);

  // The v1 encoder masks the bits away — a v1 frame cannot carry them...
  std::string v1 = encode_request(7, r, 1, kFlagRetry);
  ASSERT_EQ(peel_frame(v1.data(), v1.size(), fv), FrameStatus::Ok);
  EXPECT_EQ(fv.flags, 0);
  // ...and a hand-forged v1 frame with the bit set is rejected outright.
  std::string forged = v1;
  forged[6] = static_cast<char>(kFlagRetry);
  EXPECT_EQ(peel_frame(forged.data(), forged.size(), fv), FrameStatus::Bad);
}

TEST(CrossVersion, UnknownFlagBitsRejectedEvenAtV2) {
  Request r(Request::Op::CriticalGet, "k", LockRef{1}, Value());
  std::string buf = encode_request(3, r, 2, 0);
  buf[6] = 0x04;  // a bit v2 does not define — a v3 leak or corruption
  FrameView fv;
  EXPECT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::Bad);
}

TEST(CrossVersion, AllMessageKindsRoundTripAtEveryVersion) {
  for (uint8_t v = kWireVersionMin; v <= kWireVersionMax; ++v) {
    Request req(Request::Op::AcquireLock, "key", LockRef{5}, Value("x", 1));
    FrameView fv;
    std::string b1 = encode_request(1, req, v);
    ASSERT_EQ(peel_frame(b1.data(), b1.size(), fv), FrameStatus::Ok);
    EXPECT_EQ(fv.version, v);
    ASSERT_TRUE(parse_request(fv.payload).has_value());

    std::string b2 = encode_response(2, Response(OpStatus::Ok), v);
    ASSERT_EQ(peel_frame(b2.data(), b2.size(), fv), FrameStatus::Ok);
    ASSERT_TRUE(parse_response(fv.payload).has_value());

    std::string b3 = encode_store_request(3, StoreRequest::read("k"), v);
    ASSERT_EQ(peel_frame(b3.data(), b3.size(), fv), FrameStatus::Ok);
    ASSERT_TRUE(parse_store_request(fv.payload).has_value());

    std::string b4 = encode_store_reply(4, StoreReply(true, -1), v);
    ASSERT_EQ(peel_frame(b4.data(), b4.size(), fv), FrameStatus::Ok);
    ASSERT_TRUE(parse_store_reply(fv.payload).has_value());
  }
}

// ---- The v1 byte-layout goldens. -------------------------------------------
//
// These bytes are the compatibility contract with every binary ever shipped
// at v1.  A failure here means the change breaks rolling upgrades: revert
// it, or ship it as a new version with its own negotiation path.

TEST(Golden, V1RequestBytes) {
  Request req(Request::Op::CriticalPut, "golden.key", LockRef{42},
              Value("golden-value", 12));
  req.batch.emplace_back(BatchOp::Kind::Put, "bk", Value("bv", 2));
  EXPECT_EQ(to_hex(encode_request(0x1122334455667788ull, req)),
            "54000000010100008877665544332211020a000000676f6c64656e2e6b65792a"
            "000000000000000c000000676f6c64656e2d76616c75650c0000000000000001"
            "0000000002000000626b0200000062760200000000000000");
}

TEST(Golden, V1ResponseBytes) {
  Response resp(OpStatus::Ok, LockRef{7}, Value("rv", 2), {"k1", "k2"});
  resp.batch.emplace_back(OpStatus::NotFound, Value());
  EXPECT_EQ(to_hex(encode_response(9, resp)),
            "4400000001020000090000000000000000070000000000000002000000727602"
            "0000000000000002000000020000006b31020000006b32010000000600000000"
            "0000000000000000");
}

TEST(Golden, V1StoreRequestBytes) {
  EXPECT_EQ(to_hex(encode_store_request(
                5, StoreRequest::accept("sk", WireCell(Value("cv", 2), 33), 4))),
            "310000000103000005000000000000000302000000736b0200000063760200000000"
            "00000021000000000000000400000000000000");
}

TEST(Golden, V1StoreReplyBytes) {
  StoreReply reply(true, 6);
  reply.has_cell = true;
  reply.cell = WireCell(Value("rc", 2), 21);
  reply.cell_ballot = 3;
  reply.from = 2;
  EXPECT_EQ(to_hex(encode_store_reply(11, reply)),
            "38000000010400000b0000000000000001060000000000000001020000007263"
            "02000000000000001500000000000000030000000000000002000000");
}

TEST(Golden, HelloBytes) {
  Hello h;
  h.min = 1;
  h.max = 2;
  h.features = 0;
  h.node = 4;
  EXPECT_EQ(to_hex(encode_hello(h)),
            "1a00000001050000000000000000000048454c4f01020000000004000000");
}

TEST(Golden, GoodbyeBytes) {
  EXPECT_EQ(to_hex(encode_goodbye(GoodbyeReason::Restart)),
            "1000000002060000000000000000000002000000");
}

}  // namespace
}  // namespace music::wire
