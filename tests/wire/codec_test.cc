// Codec property tests: every frame type round-trips losslessly, and no
// malformed input — truncated, corrupted, oversized, or wrong-versioned —
// ever parses (or crashes).  These pin the TCP backend's wire contract.
#include "wire/codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "wire/messages.h"

namespace music::wire {
namespace {

// ---- Round-trip equality helpers (the structs have no operator==). ---------

void expect_eq(const BatchOp& a, const BatchOp& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.value.data, b.value.data);
  EXPECT_EQ(a.value.logical_size, b.value.logical_size);
}

void expect_eq(const Request& a, const Request& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.ref, b.ref);
  EXPECT_EQ(a.value.data, b.value.data);
  EXPECT_EQ(a.value.logical_size, b.value.logical_size);
  ASSERT_EQ(a.batch.size(), b.batch.size());
  for (size_t i = 0; i < a.batch.size(); ++i) expect_eq(a.batch[i], b.batch[i]);
}

void expect_eq(const Response& a, const Response& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.ref, b.ref);
  EXPECT_EQ(a.value.data, b.value.data);
  EXPECT_EQ(a.value.logical_size, b.value.logical_size);
  EXPECT_EQ(a.keys, b.keys);
  ASSERT_EQ(a.batch.size(), b.batch.size());
  for (size_t i = 0; i < a.batch.size(); ++i) {
    EXPECT_EQ(a.batch[i].status, b.batch[i].status);
    EXPECT_EQ(a.batch[i].value.data, b.batch[i].value.data);
  }
}

void expect_eq(const StoreRequest& a, const StoreRequest& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.cell.value.data, b.cell.value.data);
  EXPECT_EQ(a.cell.value.logical_size, b.cell.value.logical_size);
  EXPECT_EQ(a.cell.ts, b.cell.ts);
  EXPECT_EQ(a.ballot, b.ballot);
}

void expect_eq(const StoreReply& a, const StoreReply& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.ballot, b.ballot);
  EXPECT_EQ(a.has_cell, b.has_cell);
  EXPECT_EQ(a.cell.value.data, b.cell.value.data);
  EXPECT_EQ(a.cell.ts, b.cell.ts);
  EXPECT_EQ(a.cell_ballot, b.cell_ballot);
  EXPECT_EQ(a.from, b.from);
}

/// Peels the single frame out of an encoded buffer, asserting success and
/// the expected type/req_id.
FrameView peel_ok(const std::string& buf, FrameType want_type,
                  uint64_t want_req_id) {
  FrameView fv;
  EXPECT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::Ok);
  EXPECT_EQ(fv.type, want_type);
  EXPECT_EQ(fv.req_id, want_req_id);
  EXPECT_EQ(fv.frame_bytes, buf.size());
  return fv;
}

// ---- Round trips: every message kind, every enum variant. ------------------

TEST(Codec, RequestRoundTripsEveryOp) {
  const Request::Op kOps[] = {
      Request::Op::CreateLockRef, Request::Op::AcquireLock,
      Request::Op::CriticalPut,   Request::Op::CriticalGet,
      Request::Op::CriticalDelete, Request::Op::ReleaseLock,
      Request::Op::ForcedRelease, Request::Op::PutEventual,
      Request::Op::GetEventual,   Request::Op::GetAllKeys,
      Request::Op::Batch,
  };
  uint64_t req_id = 7;
  for (Request::Op op : kOps) {
    Request r(op, "bank.x", LockRef{42}, Value("payload", 7));
    if (op == Request::Op::Batch) {
      r.batch.emplace_back(BatchOp::Kind::Put, "a", Value("1", 1));
      r.batch.emplace_back(BatchOp::Kind::Get, "b", Value());
      r.batch.emplace_back(BatchOp::Kind::Delete, "c", Value());
    }
    std::string buf = encode_request(req_id, r);
    FrameView fv = peel_ok(buf, FrameType::ClientRequest, req_id);
    auto parsed = parse_request(fv.payload);
    ASSERT_TRUE(parsed.has_value()) << "op " << static_cast<int>(op);
    expect_eq(*parsed, r);
    ++req_id;
  }
}

TEST(Codec, ResponseRoundTripsEveryStatus) {
  for (int s = 0; s <= static_cast<int>(OpStatus::WrongShard); ++s) {
    Response r(static_cast<OpStatus>(s), LockRef{3}, Value("v", 1),
               {"k1", "k2", ""});
    r.batch.emplace_back(OpStatus::Ok, Value("42", 2));
    r.batch.emplace_back(OpStatus::NotFound);
    std::string buf = encode_response(99, r);
    FrameView fv = peel_ok(buf, FrameType::ClientResponse, 99);
    auto parsed = parse_response(fv.payload);
    ASSERT_TRUE(parsed.has_value()) << "status " << s;
    expect_eq(*parsed, r);
  }
}

TEST(Codec, StoreRequestRoundTripsEveryOp) {
  const StoreRequest kMsgs[] = {
      StoreRequest::write("k", WireCell(Value("v", 1), 12345)),
      StoreRequest::read("k"),
      StoreRequest::prepare("k", 7),
      StoreRequest::accept("k", WireCell(Value("w", 1), 9), 8),
      StoreRequest::commit("k", WireCell(Value(), -1), 8),
  };
  for (const StoreRequest& m : kMsgs) {
    std::string buf = encode_store_request(5, m);
    FrameView fv = peel_ok(buf, FrameType::StoreRequest, 5);
    auto parsed = parse_store_request(fv.payload);
    ASSERT_TRUE(parsed.has_value()) << "op " << static_cast<int>(m.op);
    expect_eq(*parsed, m);
  }
}

TEST(Codec, StoreReplyRoundTripsAllShapes) {
  StoreReply ack(true, -1);
  StoreReply nack(false, 17);
  StoreReply read_hit(true, -1);
  read_hit.has_cell = true;
  read_hit.cell = WireCell(Value("cell", 4), 999);
  read_hit.from = 2;
  StoreReply promise_with_proposal(true, 6);
  promise_with_proposal.has_cell = true;
  promise_with_proposal.cell = WireCell(Value("p", 1), 5);
  promise_with_proposal.cell_ballot = 4;
  for (const StoreReply& m : {ack, nack, read_hit, promise_with_proposal}) {
    std::string buf = encode_store_reply(11, m);
    FrameView fv = peel_ok(buf, FrameType::StoreReply, 11);
    auto parsed = parse_store_reply(fv.payload);
    ASSERT_TRUE(parsed.has_value());
    expect_eq(*parsed, m);
  }
}

TEST(Codec, EmptyAndLargeFieldsRoundTrip) {
  Request empty(Request::Op::GetEventual, "", kNoLockRef, Value());
  auto p1 = parse_request(
      peel_ok(encode_request(0, empty), FrameType::ClientRequest, 0).payload);
  ASSERT_TRUE(p1.has_value());
  expect_eq(*p1, empty);

  // A value bigger than any internal chunk, with embedded NULs.
  std::string big(1 << 16, '\0');
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i * 31);
  Request fat(Request::Op::CriticalPut, std::string(300, 'k'), LockRef{1},
              Value(big, big.size()));
  auto p2 = parse_request(
      peel_ok(encode_request(1, fat), FrameType::ClientRequest, 1).payload);
  ASSERT_TRUE(p2.has_value());
  expect_eq(*p2, fat);
}

// ---- Framing rejection. -----------------------------------------------------

TEST(Codec, TruncatedFramesNeedMore) {
  Request r(Request::Op::AcquireLock, "k", LockRef{1}, Value());
  std::string buf = encode_request(1, r);
  // Every proper prefix must report NeedMore — never Ok, never Bad.
  for (size_t n = 0; n < buf.size(); ++n) {
    FrameView fv;
    EXPECT_EQ(peel_frame(buf.data(), n, fv), FrameStatus::NeedMore)
        << "prefix " << n;
  }
}

TEST(Codec, WrongVersionRejected) {
  std::string buf = encode_request(1, Request());
  for (int v : {0, kWireVersionMax + 1, 200}) {
    std::string b = buf;
    b[4] = static_cast<char>(v);
    FrameView fv;
    EXPECT_EQ(peel_frame(b.data(), b.size(), fv), FrameStatus::Bad)
        << "version " << v;
  }
}

TEST(Codec, UnknownFrameTypeRejected) {
  std::string buf = encode_request(1, Request());
  for (int t : {0, 7, 17, 255}) {
    std::string b = buf;
    b[5] = static_cast<char>(t);
    FrameView fv;
    EXPECT_EQ(peel_frame(b.data(), b.size(), fv), FrameStatus::Bad)
        << "type " << t;
  }
}

TEST(Codec, NonZeroFlagsRejected) {
  std::string buf = encode_request(1, Request());
  buf[6] = 1;
  FrameView fv;
  EXPECT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::Bad);
}

TEST(Codec, OversizedLengthRejected) {
  std::string buf = encode_request(1, Request());
  uint32_t len = kMaxFrameBytes + 1;
  std::memcpy(buf.data(), &len, sizeof(len));
  FrameView fv;
  // Must reject from the header alone, before demanding 16MB of buffer —
  // and with the distinct TooLarge status, so transports can attribute the
  // drop to a resource bound rather than corruption.
  EXPECT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::TooLarge);
}

TEST(Codec, ConfigurableFrameLimitBoundary) {
  // The limit is a PeelLimits knob, exercised at the exact boundary: a
  // frame whose len == max_frame_bytes passes, len == max + 1 is TooLarge.
  Request r(Request::Op::CriticalPut, "k", LockRef{1}, Value("0123456789", 10));
  std::string buf = encode_request(1, r);
  uint32_t len = static_cast<uint32_t>(buf.size() - 4);
  PeelLimits at{kWireVersionMin, kWireVersionMax, len};
  PeelLimits below{kWireVersionMin, kWireVersionMax, len - 1};
  FrameView fv;
  EXPECT_EQ(peel_frame(buf.data(), buf.size(), fv, at), FrameStatus::Ok);
  EXPECT_EQ(peel_frame(buf.data(), buf.size(), fv, below), FrameStatus::TooLarge);
  // The rejection must come from the length prefix alone: four bytes of a
  // giant frame are enough to refuse it.
  EXPECT_EQ(peel_frame(buf.data(), 4, fv, below), FrameStatus::TooLarge);
}

TEST(Codec, UndersizedLengthRejected) {
  // len too small to even cover the fixed header remainder.
  std::string buf = encode_request(1, Request());
  for (uint32_t len : {0u, 4u, 11u}) {
    std::string b = buf;
    std::memcpy(b.data(), &len, sizeof(len));
    FrameView fv;
    EXPECT_EQ(peel_frame(b.data(), b.size(), fv), FrameStatus::Bad)
        << "len " << len;
  }
}

// ---- Payload rejection. -----------------------------------------------------

TEST(Codec, TruncatedPayloadNeverParses) {
  Request r(Request::Op::Batch, "key", LockRef{9}, Value("vv", 2));
  r.batch.emplace_back(BatchOp::Kind::Put, "a", Value("1", 1));
  std::string buf = encode_request(1, r);
  FrameView fv = peel_ok(buf, FrameType::ClientRequest, 1);
  for (size_t n = 0; n < fv.payload.size(); ++n) {
    EXPECT_FALSE(parse_request(fv.payload.substr(0, n)).has_value())
        << "prefix " << n;
  }
}

TEST(Codec, TrailingGarbageRejected) {
  std::string buf = encode_response(1, Response(OpStatus::Ok));
  FrameView fv = peel_ok(buf, FrameType::ClientResponse, 1);
  std::string payload(fv.payload);
  payload.push_back('X');
  EXPECT_FALSE(parse_response(payload).has_value());
}

TEST(Codec, OutOfRangeEnumsRejected) {
  {
    std::string buf = encode_request(1, Request());
    FrameView fv = peel_ok(buf, FrameType::ClientRequest, 1);
    std::string payload(fv.payload);
    payload[0] = static_cast<char>(200);  // Request::Op is the first byte
    EXPECT_FALSE(parse_request(payload).has_value());
  }
  {
    std::string buf = encode_store_request(1, StoreRequest::read("k"));
    FrameView fv = peel_ok(buf, FrameType::StoreRequest, 1);
    std::string payload(fv.payload);
    payload[0] = static_cast<char>(200);  // StoreOp is the first byte
    EXPECT_FALSE(parse_store_request(payload).has_value());
  }
}

// ---- Seeded fuzz: malformed input must never crash. -------------------------

TEST(Codec, FuzzSingleByteCorruption) {
  std::mt19937_64 rng(0xC0DEC);
  Request r(Request::Op::Batch, "fuzz-key", LockRef{77}, Value("abc", 3));
  r.batch.emplace_back(BatchOp::Kind::Put, "bk", Value("bv", 2));
  std::string buf = encode_request(123, r);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string b = buf;
    size_t pos = rng() % b.size();
    b[pos] = static_cast<char>(rng());
    FrameView fv;
    FrameStatus st = peel_frame(b.data(), b.size(), fv);
    if (st != FrameStatus::Ok) continue;  // header corruption caught
    // Parsers must either reject or produce *something* without crashing;
    // a flipped payload byte may still decode (it changed a string byte).
    (void)parse_request(fv.payload);
  }
}

TEST(Codec, FuzzRandomBuffers) {
  std::mt19937_64 rng(0xF00D);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string b(rng() % 256, '\0');
    for (char& c : b) c = static_cast<char>(rng());
    FrameView fv;
    FrameStatus st = peel_frame(b.data(), b.size(), fv);
    if (st == FrameStatus::Ok) {
      (void)parse_request(fv.payload);
      (void)parse_response(fv.payload);
      (void)parse_store_request(fv.payload);
      (void)parse_store_reply(fv.payload);
    }
  }
}

TEST(Codec, FuzzRoundTripRandomMessages) {
  std::mt19937_64 rng(42);
  auto rand_str = [&](size_t max) {
    std::string s(rng() % (max + 1), '\0');
    for (char& c : s) c = static_cast<char>(rng());
    return s;
  };
  for (int iter = 0; iter < 500; ++iter) {
    Request r(static_cast<Request::Op>(rng() % 11), rand_str(40),
              LockRef{static_cast<int64_t>(rng() % 1000) - 1},
              Value(rand_str(100), rng() % 4096));
    size_t nbatch = rng() % 4;
    for (size_t i = 0; i < nbatch; ++i) {
      r.batch.emplace_back(static_cast<BatchOp::Kind>(rng() % 3), rand_str(10),
                           Value(rand_str(20), rng() % 64));
    }
    uint64_t id = rng();
    std::string buf = encode_request(id, r);
    FrameView fv;
    ASSERT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::Ok);
    ASSERT_EQ(fv.req_id, id);
    auto parsed = parse_request(fv.payload);
    ASSERT_TRUE(parsed.has_value());
    expect_eq(*parsed, r);
  }
}

TEST(Codec, BackToBackFramesPeelInOrder) {
  std::string buf = encode_request(1, Request(Request::Op::CriticalGet, "a",
                                              LockRef{1}, Value()));
  buf += encode_store_reply(2, StoreReply(true, -1));
  buf += encode_response(3, Response(OpStatus::Nack));

  FrameView fv;
  ASSERT_EQ(peel_frame(buf.data(), buf.size(), fv), FrameStatus::Ok);
  EXPECT_EQ(fv.type, FrameType::ClientRequest);
  EXPECT_EQ(fv.req_id, 1u);
  size_t off = fv.frame_bytes;

  ASSERT_EQ(peel_frame(buf.data() + off, buf.size() - off, fv),
            FrameStatus::Ok);
  EXPECT_EQ(fv.type, FrameType::StoreReply);
  EXPECT_EQ(fv.req_id, 2u);
  off += fv.frame_bytes;

  ASSERT_EQ(peel_frame(buf.data() + off, buf.size() - off, fv),
            FrameStatus::Ok);
  EXPECT_EQ(fv.type, FrameType::ClientResponse);
  EXPECT_EQ(fv.req_id, 3u);
  off += fv.frame_bytes;
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(peel_frame(buf.data() + off, 0, fv), FrameStatus::NeedMore);
}

}  // namespace
}  // namespace music::wire
