// The rolling-upgrade matrix in the sim world: a mixed-version 3-site
// fleet (versions axis) restarted one site at a time onto the new binary
// via `restart ... version 2` faults, with a partition and a store crash
// overlaid mid-roll, ECF oracle armed.  Runs across MUSIC_FAULT_SEEDS
// seeds (default 2 for the fast tier-1 run; CI's upgrade job sets 8).
//
// The ECF-clean roll uses durable restarts: a binary swap keeps the data
// directory.  The amnesia variant (disk lost with the old binary) gets its
// own test that deliberately does NOT assert zero violations — wiping a
// store replica breaks quorum intersection for every earlier write whose
// quorum included it, and without a repair/bootstrap step before rejoining
// that is real data loss the oracle exists to surface.
//
// Also pins the spec-level surface of the upgrade axis: parse/format
// round trip, the /v label segment, grid expansion, and the validate()
// rejections for fleets the nemesis cannot drive.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "scenario/run.h"
#include "scenario/spec.h"
#include "wire/codec.h"

namespace music::scn {
namespace {

int env_seeds() {
  if (const char* env = std::getenv("MUSIC_FAULT_SEEDS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 2;
}

constexpr char kRollingUpgradeSpec[] = R"(scenario rolling-upgrade
seeds 1
protocols music,mscp

topology {
  profiles local
  store_nodes 3
  versions 1:2:2
}

workload {
  mixes 0.5
  clients 6
  keys 16
  value 10
  warmup 1s
  measure 4s
}

faults {
  at 1s restart 0 version 2 for 300ms
  at 2s restart 1 version 2 for 300ms
  at 2500ms partition 0|1,2 for 400ms
  at 3200ms restart 2 version 2 for 300ms
  at 4s crash store 1 for 300ms
}
)";

TEST(UpgradeSpec, VersionsAxisRoundTripsAndExpands) {
  Diag diag;
  auto spec = ScenarioSpec::parse(
      "scenario vs\nprotocols music\n"
      "topology {\n  versions 1:2:2,2:2:2\n}\n",
      &diag);
  ASSERT_TRUE(spec.has_value()) << diag.str();
  ASSERT_EQ(spec->topology.versions.size(), 2u);
  EXPECT_EQ(spec->topology.versions[0], "1:2:2");

  // format() prints the axis and parse() reads it back verbatim.
  auto again = ScenarioSpec::parse(spec->format(), &diag);
  ASSERT_TRUE(again.has_value()) << diag.str();
  EXPECT_EQ(*again, *spec);

  // The axis multiplies the grid and stamps only non-default labels.
  auto cells = expand(*spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_NE(cells[0].label().find("/v1:2:2/"), std::string::npos);
  EXPECT_NE(cells[1].label().find("/v2:2:2/"), std::string::npos);

  // Default fleets keep their pre-upgrade labels (golden stability).
  auto plain = ScenarioSpec::parse("scenario p\nprotocols music\n", &diag);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(expand(*plain).at(0).label().find("/v"), std::string::npos);
}

TEST(UpgradeSpec, RejectsMalformedVersionLists) {
  Diag diag;
  for (const char* bad : {"1:2", "1:2:2:2", "0:2:2", "a:2:2", "10:2:2"}) {
    std::string text = "scenario vs\ntopology {\n  versions ";
    text += bad;
    text += "\n}\n";
    EXPECT_FALSE(ScenarioSpec::parse(text, &diag).has_value()) << bad;
  }
}

TEST(UpgradeSpec, ValidateGatesRestartAndVersions) {
  Diag diag;
  // Restart faults and the versions axis need MUSIC replicas to drive.
  auto zab = ScenarioSpec::parse(
      "scenario z\nprotocols zab\nfaults {\n  at 1s restart 0\n}\n", &diag);
  ASSERT_TRUE(zab.has_value()) << diag.str();
  EXPECT_NE(validate(*zab).find("restart"), std::string::npos);

  auto zabv = ScenarioSpec::parse(
      "scenario z\nprotocols zab\ntopology {\n  versions 1:2:2\n}\n", &diag);
  ASSERT_TRUE(zabv.has_value()) << diag.str();
  EXPECT_NE(validate(*zabv).find("versions"), std::string::npos);

  // Sites are 0..2, and a restart can't name a wire version this binary
  // doesn't speak.
  auto far = ScenarioSpec::parse(
      "scenario f\nprotocols music\nfaults {\n  at 1s restart 7\n}\n", &diag);
  ASSERT_TRUE(far.has_value());
  EXPECT_FALSE(validate(*far).empty());

  auto future = ScenarioSpec::parse(
      "scenario f\nprotocols music\nfaults {\n  at 1s restart 0 version 9\n}\n",
      &diag);
  ASSERT_TRUE(future.has_value());
  EXPECT_NE(validate(*future).find("version"), std::string::npos);

  // The rolling-upgrade spec itself is valid.
  auto roll = ScenarioSpec::parse(kRollingUpgradeSpec, &diag);
  ASSERT_TRUE(roll.has_value()) << diag.str();
  EXPECT_EQ(validate(*roll), "") << validate(*roll);
}

TEST(UpgradeMatrix, RollingRestartOntoNewBinaryKeepsEcfClean) {
  Diag diag;
  auto spec = ScenarioSpec::parse(kRollingUpgradeSpec, &diag);
  ASSERT_TRUE(spec.has_value()) << diag.str();
  spec->seeds = env_seeds();

  auto outcomes = run_sweep(*spec);
  ASSERT_EQ(outcomes.size(),
            2u * static_cast<size_t>(spec->seeds));  // music,mscp x seeds
  for (const CellOutcome& out : outcomes) {
    EXPECT_TRUE(out.ok) << out.label << ": " << out.error;
    EXPECT_EQ(out.violations, 0u) << out.label;
    EXPECT_GT(out.run.completed, 0u) << out.label;
    // Every site was restarted onto the v2 binary mid-roll, so the fleet's
    // negotiated floor ends at 2 even though it started mixed (1:2:2).
    EXPECT_EQ(out.fleet_version, static_cast<int>(wire::kWireVersionMax))
        << out.label;
  }
}

TEST(UpgradeMatrix, AmnesiaRestartStillRollsTheFleetForward) {
  // Site 2 comes back onto the new binary with its disk lost.  The fleet
  // must stay live and finish the upgrade, but ECF-clean is NOT asserted:
  // the wiped replica rejoins read quorums holding nothing, so any write
  // whose quorum included it may now be visible on a single live replica
  // only — the oracle reports those as Latest-State violations, and that
  // is the correct verdict for an amnesia rejoin without repair.
  Diag diag;
  std::string text = kRollingUpgradeSpec;
  size_t pos = text.find("restart 2 version 2");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + std::string("restart 2 version 2").size(), " amnesia");
  auto spec = ScenarioSpec::parse(text, &diag);
  ASSERT_TRUE(spec.has_value()) << diag.str();
  spec->seeds = env_seeds();

  auto outcomes = run_sweep(*spec);
  ASSERT_EQ(outcomes.size(), 2u * static_cast<size_t>(spec->seeds));
  for (const CellOutcome& out : outcomes) {
    // `error` may carry an oracle report (expected here: the lost writes
    // surface as Latest-State, and a wiped lock-queue cell can surface as
    // Exclusivity).  Anything not shaped like an oracle report — a spec
    // rejection or an exception — is a real failure.
    if (!out.ok) {
      EXPECT_EQ(out.error.rfind("[", 0), 0u)
          << out.label << ": " << out.error;
    }
    EXPECT_GT(out.run.completed, 0u) << out.label;
    EXPECT_EQ(out.fleet_version, static_cast<int>(wire::kWireVersionMax))
        << out.label;
  }
}

TEST(UpgradeMatrix, MixedFleetWithoutUpgradeStaysAtTheV1Floor) {
  Diag diag;
  auto spec = ScenarioSpec::parse(
      "scenario mixed\nprotocols music\nseeds 1\n"
      "topology {\n  profiles local\n  versions 1:2:2\n}\n"
      "workload {\n  clients 3\n  keys 8\n  warmup 500ms\n  measure 1s\n}\n",
      &diag);
  ASSERT_TRUE(spec.has_value()) << diag.str();
  auto outcomes = run_sweep(*spec);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  // Site 0 still runs the v1-pinned binary: every connection it is part of
  // pins v1, so the fleet floor is 1.
  EXPECT_EQ(outcomes[0].fleet_version, 1);
}

}  // namespace
}  // namespace music::scn
