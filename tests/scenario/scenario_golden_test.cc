// Determinism goldens for the scenario runner.
//
// One small multi-axis sweep (protocol x mix x seed on the local profile)
// pinned two ways: every cell's checksum must be identical at 1 and 4
// worker threads (thread-count invariance of par::run_worlds), and the
// checksums themselves are pinned so any change to the scenario compiler,
// the workload drivers, or the protocols underneath shows up as a diff.
//
// Regenerate after a deliberate semantic change with:
//   MUSIC_REGEN_GOLDENS=1 ./scenario_golden_test
// and paste the printed table over kGoldens below.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/run.h"
#include "scenario/spec.h"

namespace music::scn {
namespace {

const char kSweep[] =
    "scenario golden\n"
    "seeds 2\n"
    "protocols music,mscp\n"
    "topology {\n"
    "  profiles local\n"
    "}\n"
    "workload {\n"
    "  mixes 0,1\n"
    "  clients 3\n"
    "  keys 8\n"
    "  keying uniform\n"
    "  arrival closed\n"
    "  value 10\n"
    "  warmup 500ms\n"
    "  measure 2s\n"
    "}\n";

struct Golden {
  const char* label;
  uint64_t checksum;
};

// Captured from the initial scenario runner; regenerate (see header
// comment) when the runner's semantics deliberately change.
constexpr Golden kGoldens[] = {
    {"music/local/mix0/c3/s1", 0xaed5cfab1ed7a757ull},
    {"music/local/mix0/c3/s2", 0xbf3c51e931abf63full},
    {"music/local/mix1/c3/s1", 0xc8f537d3b2b50029ull},
    {"music/local/mix1/c3/s2", 0x06f2ef7996236d9dull},
    {"mscp/local/mix0/c3/s1", 0xf2de149396a8e44dull},
    {"mscp/local/mix0/c3/s2", 0x3e0d14c88037b288ull},
    {"mscp/local/mix1/c3/s1", 0x1fd5eb957eba3f43ull},
    {"mscp/local/mix1/c3/s2", 0x94219a706852a1afull},
};

std::vector<CellOutcome> sweep(size_t threads) {
  auto spec = ScenarioSpec::parse(kSweep);
  EXPECT_TRUE(spec.has_value());
  RunOptions opt;
  opt.threads = threads;
  return run_sweep(*spec, opt);
}

TEST(ScenarioGolden, ChecksumsMatchPinnedTableAndAreThreadCountInvariant) {
  std::vector<CellOutcome> one = sweep(1);
  std::vector<CellOutcome> four = sweep(4);
  ASSERT_EQ(one.size(), std::size(kGoldens));
  ASSERT_EQ(four.size(), one.size());

  bool regen = std::getenv("MUSIC_REGEN_GOLDENS") != nullptr;
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(one[i].ok) << one[i].label << ": " << one[i].error;
    // Thread-count invariance: same cell, same bits, any worker count.
    EXPECT_EQ(one[i].label, four[i].label);
    EXPECT_EQ(one[i].checksum(), four[i].checksum()) << one[i].label;

    if (regen) {
      std::printf("    {\"%s\", 0x%016llxull},\n", one[i].label.c_str(),
                  static_cast<unsigned long long>(one[i].checksum()));
      continue;
    }
    EXPECT_EQ(one[i].label, kGoldens[i].label);
    EXPECT_EQ(one[i].checksum(), kGoldens[i].checksum) << one[i].label;
  }
}

}  // namespace
}  // namespace music::scn
