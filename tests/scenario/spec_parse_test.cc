// Scenario grammar: round trips, canonical form, grid expansion, client
// placement, and — the negative half — malformed specs and malformed fault
// scripts coming back as line/column diagnostics, never a crash and never a
// silently dropped clause.
#include <gtest/gtest.h>

#include <string>

#include "fault/fault.h"
#include "scenario/run.h"
#include "scenario/spec.h"

namespace music::scn {
namespace {

const char kFull[] =
    "# a full spec\n"
    "scenario full\n"
    "seeds 2\n"
    "base_seed 7\n"
    "protocols music,mscp,zab,raftkv\n"
    "\n"
    "topology {\n"
    "  profiles lUs,lUsEu\n"
    "  holder_site 1\n"
    "  store_nodes 5\n"
    "}\n"
    "\n"
    "workload {\n"
    "  mixes 0,0.5,1\n"
    "  clients 2,4\n"
    "  placement 1,0,2\n"
    "  keys 64\n"
    "  keying zipfian 0.99\n"
    "  arrival diurnal 20 period 10s low 0.25\n"
    "  value 16\n"
    "  warmup 500ms\n"
    "  measure 2s\n"
    "}\n"
    "\n"
    "faults {\n"
    "  at 3s partition 0|1,2 for 2s\n"
    "  at 8s crash store 1 for 1s\n"
    "}\n";

TEST(SpecParse, FullSpecRoundTrips) {
  Diag d;
  auto spec = ScenarioSpec::parse(kFull, &d);
  ASSERT_TRUE(spec.has_value()) << d.str();

  EXPECT_EQ(spec->name, "full");
  EXPECT_EQ(spec->seeds, 2);
  EXPECT_EQ(spec->base_seed, 7u);
  ASSERT_EQ(spec->protocols.size(), 4u);
  EXPECT_EQ(spec->protocols[3], Protocol::RaftKv);
  EXPECT_EQ(spec->topology.holder_site, 1);
  EXPECT_EQ(spec->topology.store_nodes, 5);
  EXPECT_EQ(spec->workload.mixes.size(), 3u);
  EXPECT_EQ(spec->workload.placement, (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(spec->workload.keying, Keying::Zipfian);
  EXPECT_DOUBLE_EQ(spec->workload.zipf_theta, 0.99);
  EXPECT_EQ(spec->workload.arrival.kind, ArrivalKind::Diurnal);
  EXPECT_EQ(spec->workload.arrival.period, sim::sec(10));
  EXPECT_DOUBLE_EQ(spec->workload.arrival.low, 0.25);
  EXPECT_EQ(spec->workload.warmup, sim::ms(500));
  // Fault clauses arrive normalized, none dropped.
  EXPECT_EQ(spec->faults,
            "at 3s partition 0|1,2 for 2s; at 8s crash store 1 for 1s");

  // parse(format(spec)) == spec, and format is a fixed point.
  std::string text = spec->format();
  Diag d2;
  auto again = ScenarioSpec::parse(text, &d2);
  ASSERT_TRUE(again.has_value()) << d2.str();
  EXPECT_EQ(*again, *spec);
  EXPECT_EQ(again->format(), text);
}

TEST(SpecParse, MinimalSpecGetsDefaultsAndRoundTrips) {
  auto spec = ScenarioSpec::parse("scenario tiny\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->name, "tiny");
  EXPECT_EQ(spec->seeds, 1);
  EXPECT_EQ(spec->protocols, (std::vector<Protocol>{Protocol::Music}));
  EXPECT_EQ(spec->topology.profiles, (std::vector<std::string>{"lUs"}));
  EXPECT_TRUE(spec->faults.empty());

  auto again = ScenarioSpec::parse(spec->format());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *spec);
}

TEST(SpecParse, SemicolonFaultClausesOnOneLineStayIntact) {
  auto spec = ScenarioSpec::parse(
      "scenario s\nfaults {\n"
      "  at 1s crash music 0 for 1s; at 2s   crash music 1 for 1s\n"
      "}\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->faults,
            "at 1s crash music 0 for 1s; at 2s crash music 1 for 1s");
  auto sched = fault::Schedule::parse(spec->faults);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->size(), 2u);
}

TEST(SpecParse, ExpansionOrderAndSeeds) {
  auto spec = ScenarioSpec::parse(
      "scenario grid\nseeds 2\nbase_seed 10\nprotocols music,zab\n"
      "topology {\n  profiles lUs\n}\n"
      "workload {\n  mixes 0,1\n  clients 3\n}\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->num_cells(), 2u * 1u * 2u * 1u * 2u);
  auto cells = expand(*spec);
  ASSERT_EQ(cells.size(), 8u);
  // protocols-major, then profile, mix, clients, seeds-minor.
  EXPECT_EQ(cells[0].label(), "music/lUs/mix0/c3/s10");
  EXPECT_EQ(cells[1].label(), "music/lUs/mix0/c3/s11");
  EXPECT_EQ(cells[2].label(), "music/lUs/mix1/c3/s10");
  EXPECT_EQ(cells[4].label(), "zab/lUs/mix0/c3/s10");
  // Cells are self-contained single points.
  EXPECT_EQ(cells[4].point.num_cells(), 1u);
  EXPECT_EQ(cells[4].seed, 10u);
}

TEST(SpecParse, ShardsAxisRoundTripsAndExpands) {
  auto spec = ScenarioSpec::parse(
      "scenario sh\nseeds 2\nprotocols music\n"
      "topology {\n  profiles local\n  shards 1,4,16\n}\n"
      "workload {\n  mixes 0\n  clients 3\n}\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->topology.shards, (std::vector<int>{1, 4, 16}));
  EXPECT_EQ(spec->num_cells(), 1u * 1u * 3u * 1u * 1u * 2u);

  auto cells = expand(*spec);
  ASSERT_EQ(cells.size(), 6u);
  // shards expands between profile and mix; the label carries "/sh<N>"
  // right before the seed, and sh1 keeps the classic label so pre-cluster
  // goldens stay pinned.
  EXPECT_EQ(cells[0].label(), "music/local/mix0/c3/s1");
  EXPECT_EQ(cells[0].shards(), 1);
  EXPECT_EQ(cells[2].label(), "music/local/mix0/c3/sh4/s1");
  EXPECT_EQ(cells[2].shards(), 4);
  EXPECT_EQ(cells[4].label(), "music/local/mix0/c3/sh16/s1");
  EXPECT_EQ(cells[4].point.topology.shards, (std::vector<int>{16}));

  // parse(format(spec)) == spec with the shards line intact.
  auto again = ScenarioSpec::parse(spec->format());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *spec);
  EXPECT_NE(spec->format().find("shards 1,4,16"), std::string::npos);
}

TEST(SpecParse, ShardsDefaultToOne) {
  auto spec = ScenarioSpec::parse("scenario tiny\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->topology.shards, (std::vector<int>{1}));
  // A default spec formats without mentioning shards only if format() emits
  // it — either way it must round trip.
  auto again = ScenarioSpec::parse(spec->format());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->topology.shards, (std::vector<int>{1}));
}

TEST(SpecParse, PlaceClientsApportionment) {
  // Even spread by default.
  EXPECT_EQ(place_clients(6, {}), (std::vector<int>{2, 2, 2}));
  // Largest remainder, ties to the lower site.
  EXPECT_EQ(place_clients(4, {}), (std::vector<int>{2, 1, 1}));
  EXPECT_EQ(place_clients(1, {}), (std::vector<int>{1, 0, 0}));
  // Zero-weight sites get exactly zero clients.
  EXPECT_EQ(place_clients(5, {1, 0, 2}), (std::vector<int>{2, 0, 3}));
  EXPECT_EQ(place_clients(1, {0, 0, 1}), (std::vector<int>{0, 0, 1}));
  // Everything sums to the total.
  for (int total = 0; total <= 17; ++total) {
    auto v = place_clients(total, {3, 1, 2});
    EXPECT_EQ(v[0] + v[1] + v[2], total) << total;
  }
}

// ---- Negative paths: scenario grammar --------------------------------------

Diag expect_bad(const std::string& text) {
  Diag d;
  auto spec = ScenarioSpec::parse(text, &d);
  EXPECT_FALSE(spec.has_value()) << "accepted: " << text;
  EXPECT_FALSE(d.message.empty());
  return d;
}

TEST(SpecParseNegative, UnknownDirectivePointsAtTheToken) {
  Diag d = expect_bad("scenario x\nbogus 1\n");
  EXPECT_EQ(d.line, 2);
  EXPECT_EQ(d.col, 1);
}

TEST(SpecParseNegative, MissingName) {
  Diag d = expect_bad("seeds 2\n");
  EXPECT_EQ(d.message, "missing \"scenario NAME\"");
}

TEST(SpecParseNegative, UnknownProtocolPointsAtTheList) {
  Diag d = expect_bad("scenario x\nprotocols music,etcd\n");
  EXPECT_EQ(d.line, 2);
  EXPECT_EQ(d.col, 11);  // the value token
  EXPECT_NE(d.message.find("etcd"), std::string::npos);
}

TEST(SpecParseNegative, UnknownProfile) {
  Diag d = expect_bad("scenario x\ntopology {\n  profiles mars\n}\n");
  EXPECT_EQ(d.line, 3);
  EXPECT_EQ(d.col, 12);
}

TEST(SpecParseNegative, UnknownBlockKeyInsideTopology) {
  Diag d = expect_bad("scenario x\ntopology {\n  leader 0\n}\n");
  EXPECT_EQ(d.line, 3);
  EXPECT_EQ(d.col, 3);
}

TEST(SpecParseNegative, ShardCountOutOfRange) {
  Diag d = expect_bad("scenario x\ntopology {\n  shards 0\n}\n");
  EXPECT_EQ(d.line, 3);
  EXPECT_NE(d.message.find("shard"), std::string::npos);
  expect_bad("scenario x\ntopology {\n  shards 4,2000\n}\n");
}

TEST(SpecParseNegative, MixOutOfRange) {
  Diag d = expect_bad("scenario x\nworkload {\n  mixes 0.5,1.5\n}\n");
  EXPECT_EQ(d.line, 3);
  EXPECT_NE(d.message.find("1.5"), std::string::npos);
}

TEST(SpecParseNegative, ZipfThetaOutOfRange) {
  Diag d = expect_bad("scenario x\nworkload {\n  keying zipfian 1.2\n}\n");
  EXPECT_EQ(d.line, 3);
  EXPECT_EQ(d.col, 18);
}

TEST(SpecParseNegative, ArrivalWrongShape) {
  Diag d = expect_bad("scenario x\nworkload {\n  arrival poisson\n}\n");
  EXPECT_EQ(d.line, 3);
}

TEST(SpecParseNegative, BadTimeSuffix) {
  Diag d = expect_bad("scenario x\nworkload {\n  measure 5m\n}\n");
  EXPECT_EQ(d.line, 3);
  EXPECT_EQ(d.col, 11);
  EXPECT_NE(d.message.find("5m"), std::string::npos);
}

TEST(SpecParseNegative, PlacementWrongArityAndZeroSum) {
  EXPECT_EQ(expect_bad("scenario x\nworkload {\n  placement 1,2\n}\n").line, 3);
  Diag d = expect_bad("scenario x\nworkload {\n  placement 0,0,0\n}\n");
  EXPECT_NE(d.message.find("zero"), std::string::npos);
}

TEST(SpecParseNegative, UnterminatedBlock) {
  Diag d = expect_bad("scenario x\nworkload {\n  keys 4\n");
  EXPECT_NE(d.message.find("unterminated"), std::string::npos);
}

TEST(SpecParseNegative, StrayClosingBrace) {
  Diag d = expect_bad("scenario x\n}\n");
  EXPECT_EQ(d.line, 2);
}

TEST(SpecParseNegative, BadFaultClauseCarriesFilePosition) {
  // The bad token ("quickly") sits on file line 4, column 6.
  Diag d = expect_bad(
      "scenario x\n"
      "faults {\n"
      "  at 2s partition 0|1,2 for 2s\n"
      "  at quickly crash store 1\n"
      "}\n");
  EXPECT_EQ(d.line, 4);
  EXPECT_EQ(d.col, 6);
}

// ---- Negative paths: the fault schedule DSL --------------------------------

fault::ParseDiag expect_bad_schedule(const std::string& script) {
  fault::ParseDiag d;
  auto s = fault::Schedule::parse(script, &d);
  EXPECT_FALSE(s.has_value()) << "accepted: " << script;
  EXPECT_FALSE(d.message.empty());
  return d;
}

TEST(FaultParseNegative, BadTimePointsAtToken) {
  fault::ParseDiag d = expect_bad_schedule("at soon partition 0|1,2");
  EXPECT_EQ(d.line, 1);
  EXPECT_EQ(d.col, 4);
}

TEST(FaultParseNegative, SecondClauseReportsItsLine) {
  fault::ParseDiag d = expect_bad_schedule(
      "at 1s partition 0|1,2 for 1s\nat 2s crash disk 1");
  EXPECT_EQ(d.line, 2);
  EXPECT_GT(d.col, 1);
}

TEST(FaultParseNegative, SemicolonClausesReportColumnPastTheFirst) {
  fault::ParseDiag d =
      expect_bad_schedule("at 1s crash store 0; at 2s explode 1");
  EXPECT_EQ(d.line, 1);
  EXPECT_GT(d.col, 20);  // inside the second clause
}

TEST(FaultParseNegative, NoSilentClauseDrop) {
  // A trailing bad clause must fail the WHOLE parse, not yield a schedule
  // with the good prefix.
  auto s = fault::Schedule::parse("at 1s crash store 0 for 1s; nonsense");
  EXPECT_FALSE(s.has_value());
  std::string err;
  EXPECT_FALSE(
      fault::Schedule::parse("at 1s crash store 0 for 1s; nonsense", &err)
          .has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);
}

TEST(FaultParseNegative, StringOverloadCarriesLineCol) {
  std::string err;
  auto s = fault::Schedule::parse("at 1s\nat 2s partition 0|1,2 fur 2s", &err);
  EXPECT_FALSE(s.has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);
}

// ---- Spec-level validation (beyond the grammar) ----------------------------

TEST(SpecValidate, CrashFaultsNeedMusicProtocols) {
  auto spec = ScenarioSpec::parse(
      "scenario x\nprotocols music,zab\n"
      "faults {\n  at 1s crash store 0 for 1s\n}\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_NE(validate(*spec).find("music/mscp"), std::string::npos);
}

TEST(SpecValidate, CrashReplicaMustExist) {
  auto spec = ScenarioSpec::parse(
      "scenario x\nprotocols music\ntopology {\n  store_nodes 3\n}\n"
      "faults {\n  at 1s crash store 5 for 1s\n}\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_NE(validate(*spec).find("no such replica"), std::string::npos);
}

TEST(SpecValidate, PartitionSitesAreBounded) {
  auto spec = ScenarioSpec::parse(
      "scenario x\nprotocols music\n"
      "faults {\n  at 1s partition 0|1,7 for 1s\n}\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_NE(validate(*spec).find("site"), std::string::npos);
}

TEST(SpecValidate, ShardsNeedMusicProtocols) {
  // zab/raftkv cells have no shard ring; a sharded sweep must be
  // music/mscp-only.
  auto spec = ScenarioSpec::parse(
      "scenario x\nprotocols music,zab\n"
      "topology {\n  shards 1,4\n}\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_NE(validate(*spec).find("shards"), std::string::npos);

  auto ok = ScenarioSpec::parse(
      "scenario x\nprotocols music,mscp\n"
      "topology {\n  shards 1,4\n}\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(validate(*ok), "");
}

TEST(SpecValidate, CleanSpecPasses) {
  auto spec = ScenarioSpec::parse(kFull);
  ASSERT_TRUE(spec.has_value());
  // kFull includes crash faults with zab/raftkv in the list: invalid.
  EXPECT_FALSE(validate(*spec).empty());
  spec->protocols = {Protocol::Music, Protocol::Mscp};
  EXPECT_EQ(validate(*spec), "");
}

}  // namespace
}  // namespace music::scn
