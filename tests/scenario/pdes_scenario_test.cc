// The scenario runner's --par-sites seam: music/mscp cells run under the
// conservative PDES engine, including cells with an armed nemesis
// (partition + crash faults land as main-lane events, alone between
// windows).  Checksums differ from classic runs by design (per-lane rng
// streams) but must be bit-identical at ANY worker count — including under
// faults, which is what the CI TSan job soaks.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/run.h"
#include "scenario/spec.h"

namespace music::scn {
namespace {

const char kCleanSweep[] =
    "scenario pdes-clean\n"
    "seeds 2\n"
    "protocols music,mscp\n"
    "topology {\n"
    "  profiles lUsEu\n"
    "}\n"
    "workload {\n"
    "  mixes 0.5\n"
    "  clients 3\n"
    "  keys 8\n"
    "  keying uniform\n"
    "  arrival closed\n"
    "  value 10\n"
    "  warmup 500ms\n"
    "  measure 2s\n"
    "}\n";

const char kFaultSweep[] =
    "scenario pdes-faults\n"
    "seeds 2\n"
    "protocols music\n"
    "topology {\n"
    "  profiles lUs\n"
    "  store_nodes 3\n"
    "}\n"
    "workload {\n"
    "  mixes 0.5\n"
    "  clients 4\n"
    "  keys 8\n"
    "  keying uniform\n"
    "  arrival closed\n"
    "  value 10\n"
    "  warmup 2s\n"
    "  measure 12s\n"
    "}\n"
    "faults {\n"
    "  at 3s partition 0|1,2 for 2s\n"
    "  at 8s crash store 1 for 2s\n"
    "}\n";

std::vector<CellOutcome> sweep(const char* spec_text, size_t par_sites) {
  auto spec = ScenarioSpec::parse(spec_text);
  EXPECT_TRUE(spec.has_value());
  RunOptions opt;
  opt.threads = 1;  // world-level parallelism off; PDES is the subject
  opt.par_sites = par_sites;
  return run_sweep(*spec, opt);
}

void expect_invariant(const char* spec_text, const char* what) {
  std::vector<CellOutcome> w1 = sweep(spec_text, 1);
  std::vector<CellOutcome> w2 = sweep(spec_text, 2);
  std::vector<CellOutcome> w4 = sweep(spec_text, 4);
  ASSERT_FALSE(w1.empty());
  ASSERT_EQ(w2.size(), w1.size());
  ASSERT_EQ(w4.size(), w1.size());
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_TRUE(w1[i].ok) << what << " " << w1[i].label << ": " << w1[i].error;
    EXPECT_EQ(w1[i].checksum(), w2[i].checksum()) << what << " " << w1[i].label;
    EXPECT_EQ(w1[i].checksum(), w4[i].checksum()) << what << " " << w1[i].label;
    EXPECT_GT(w1[i].run.completed, 0u) << what << " " << w1[i].label;
  }
}

TEST(PdesScenario, CleanCellsAreWorkerCountInvariant) {
  expect_invariant(kCleanSweep, "clean");
}

TEST(PdesScenario, FaultedCellsAreWorkerCountInvariantAndEcfClean) {
  expect_invariant(kFaultSweep, "faults");
}

}  // namespace
}  // namespace music::scn
