// Property fuzz for the scenario grammar: seeded random valid specs must
// survive parse(format(spec)) == spec for every seed, and a sample of the
// small runnable ones must execute cleanly under the armed ECF oracle.
//
// Generator values are drawn from exact-decimal pools so the %.10g float
// formatting in format() is an identity, which is what makes round-trip
// equality (not just approximate equality) the right assertion.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/run.h"
#include "scenario/spec.h"
#include "sim/rng.h"

namespace music::scn {
namespace {

template <typename T>
T pick(sim::Rng& rng, const std::vector<T>& pool) {
  return pool[static_cast<size_t>(
      rng.uniform_int(0, static_cast<int64_t>(pool.size()) - 1))];
}

/// A random non-empty subsequence of `pool`, order preserved.
template <typename T>
std::vector<T> pick_subset(sim::Rng& rng, const std::vector<T>& pool) {
  std::vector<T> out;
  for (const T& v : pool) {
    if (rng.chance(0.5)) out.push_back(v);
  }
  if (out.empty()) out.push_back(pick(rng, pool));
  return out;
}

/// Builds a random spec that the grammar accepts.  Every choice comes from
/// a pool the canonical formatter reproduces exactly.
ScenarioSpec random_spec(uint64_t seed) {
  sim::Rng rng(seed);
  ScenarioSpec s;
  s.name = "fuzz-" + std::to_string(seed);
  s.seeds = static_cast<int>(rng.uniform_int(1, 5));
  s.base_seed = static_cast<uint64_t>(rng.uniform_int(1, 1000));
  s.protocols = pick_subset(
      rng, std::vector<Protocol>{Protocol::Music, Protocol::Mscp,
                                 Protocol::Zab, Protocol::RaftKv});

  s.topology.profiles = pick_subset(
      rng, std::vector<std::string>{"11", "lUs", "lUsEu", "local"});
  s.topology.holder_site = static_cast<int>(rng.uniform_int(-1, 2));
  s.topology.store_nodes = static_cast<int>(rng.uniform_int(3, 9));

  s.workload.mixes =
      pick_subset(rng, std::vector<double>{0, 0.25, 0.5, 0.75, 1});
  s.workload.clients = pick_subset(rng, std::vector<int>{1, 2, 3, 6, 12});
  if (rng.chance(0.5)) {
    // Exactly 3 weights summing to > 0 (zero-weight sites are legal).
    do {
      s.workload.placement = {static_cast<int>(rng.uniform_int(0, 3)),
                              static_cast<int>(rng.uniform_int(0, 3)),
                              static_cast<int>(rng.uniform_int(0, 3))};
    } while (s.workload.placement[0] + s.workload.placement[1] +
                 s.workload.placement[2] ==
             0);
  }
  s.workload.keys =
      static_cast<uint64_t>(pick(rng, std::vector<int>{1, 8, 64, 4096}));
  switch (rng.uniform_int(0, 2)) {
    case 0: s.workload.keying = Keying::Uniform; break;
    case 1: s.workload.keying = Keying::Single; break;
    default:
      s.workload.keying = Keying::Zipfian;
      // Only emitted (and parsed back) for zipfian, so only set it there.
      s.workload.zipf_theta = pick(rng, std::vector<double>{0.5, 0.9, 0.99});
      break;
  }
  switch (rng.uniform_int(0, 2)) {
    case 0: s.workload.arrival.kind = ArrivalKind::Closed; break;
    case 1:
      s.workload.arrival.kind = ArrivalKind::Poisson;
      s.workload.arrival.rate =
          pick(rng, std::vector<double>{1, 2.5, 10, 50});
      break;
    default:
      s.workload.arrival.kind = ArrivalKind::Diurnal;
      s.workload.arrival.rate =
          pick(rng, std::vector<double>{1, 2.5, 10, 50});
      s.workload.arrival.period =
          pick(rng, std::vector<sim::Duration>{sim::sec(5), sim::sec(10),
                                               sim::ms(2500)});
      s.workload.arrival.low =
          pick(rng, std::vector<double>{0, 0.1, 0.25, 0.5});
      break;
  }
  s.workload.value_size =
      static_cast<size_t>(pick(rng, std::vector<int>{1, 10, 128}));
  s.workload.warmup =
      pick(rng, std::vector<sim::Duration>{0, sim::ms(500), sim::sec(1),
                                           sim::sec(2)});
  s.workload.measure =
      pick(rng, std::vector<sim::Duration>{sim::ms(500), sim::sec(2),
                                           sim::sec(10)});

  if (rng.chance(0.4)) {
    // Canonical clauses only (single spaces), matching the normalized form
    // parse() stores.  Mix of network and crash faults.
    std::vector<std::string> clauses;
    if (rng.chance(0.5)) clauses.push_back("at 2s partition 0|1,2 for 1s");
    if (rng.chance(0.5)) clauses.push_back("at 3s blackhole 0>1 for 500ms");
    if (rng.chance(0.5)) clauses.push_back("at 4s crash store 1 for 1s");
    if (clauses.empty()) clauses.push_back("at 1s spike 0<>2 delay 50ms for 1s");
    std::string script;
    for (const std::string& c : clauses) {
      if (!script.empty()) script += "; ";
      script += c;
    }
    s.faults = script;
  }
  return s;
}

TEST(SpecFuzz, ParseFormatRoundTripsForTwoHundredSeeds) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    ScenarioSpec spec = random_spec(seed);
    std::string text = spec.format();
    Diag d;
    auto again = ScenarioSpec::parse(text, &d);
    ASSERT_TRUE(again.has_value())
        << "seed " << seed << ": " << d.str() << "\n" << text;
    EXPECT_EQ(*again, spec) << "seed " << seed << "\n" << text;
    // format is a fixed point of the round trip.
    EXPECT_EQ(again->format(), text) << "seed " << seed;
  }
}

TEST(SpecFuzz, GeneratedSpecsExpandToTheirAdvertisedGrid) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ScenarioSpec spec = random_spec(seed);
    auto cells = expand(spec);
    EXPECT_EQ(cells.size(), spec.num_cells()) << "seed " << seed;
    for (const Cell& c : cells) {
      EXPECT_EQ(c.point.num_cells(), 1u);
    }
  }
}

/// Shrinks a random spec into something that runs in well under a second:
/// local profile, music only, short windows, no faults.
ScenarioSpec runnable(ScenarioSpec spec) {
  spec.protocols = {Protocol::Music};
  spec.topology.profiles = {"local"};
  spec.topology.store_nodes = 3;
  spec.seeds = 1;
  spec.workload.mixes = {spec.workload.mixes[0]};
  spec.workload.clients = {std::min(spec.workload.clients[0], 4)};
  spec.workload.warmup = sim::ms(200);
  spec.workload.measure = sim::sec(1);
  spec.faults.clear();
  return spec;
}

TEST(SpecFuzz, RandomSpecsRunCleanUnderTheArmedOracle) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ScenarioSpec spec = runnable(random_spec(seed));
    ASSERT_EQ(validate(spec), "") << "seed " << seed;
    Cell cell = expand(spec).at(0);
    CellOutcome out = run_cell(cell);
    EXPECT_TRUE(out.ok) << "seed " << seed << " " << out.label << ": "
                        << out.error;
    EXPECT_EQ(out.violations, 0u) << out.label;
    EXPECT_GT(out.run.completed, 0u) << out.label;
  }
}

}  // namespace
}  // namespace music::scn
