// Raft consensus tests: election, log replication, commit safety,
// partitions, failover.
#include "raftkv/raft.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "util/world.h"

namespace music::raftkv {
namespace {

struct RaftWorld {
  sim::Simulation sim;
  sim::Network net;
  RaftCluster cluster;
  test::TaskRunner runner;

  explicit RaftWorld(uint64_t seed = 1, RaftConfig cfg = RaftConfig())
      : sim(seed),
        net(sim, [] {
          sim::NetworkConfig c;
          c.profile = sim::LatencyProfile::profile_lus();
          return c;
        }()),
        cluster(sim, net, cfg, {0, 1, 2}),
        runner(sim) {
    cluster.start();
  }
};

TEST(Raft, ElectsExactlyOneLeader) {
  RaftWorld w;
  RaftNode* l = w.cluster.wait_for_leader();
  ASSERT_NE(l, nullptr);
  int leaders = 0;
  for (int i = 0; i < 3; ++i) {
    if (w.cluster.node(i).role() == Role::Leader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(Raft, LeadershipIsStableWithoutFailures) {
  RaftWorld w;
  RaftNode* l = w.cluster.wait_for_leader();
  ASSERT_NE(l, nullptr);
  int64_t term = l->term();
  w.sim.run_for(sim::sec(60));
  EXPECT_EQ(w.cluster.leader(), l);
  EXPECT_EQ(l->term(), term);
}

TEST(Raft, ProposalsCommitAndApplyEverywhere) {
  RaftWorld w;
  RaftNode* l = w.cluster.wait_for_leader();
  ASSERT_NE(l, nullptr);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      std::vector<std::pair<Key, Value>> writes;
      // Built stepwise: GCC 12 mis-fires -Werror=restrict on literal +
      // to_string rvalue concats inside coroutine frames.
      std::string k = "k";
      k += std::to_string(i);
      writes.emplace_back(k, Value("v"));
      auto out = co_await l->propose(Command(std::move(writes)));
      CO_ASSERT_EQ(out.status, OpStatus::Ok);
      EXPECT_TRUE(out.applied);
    }
    co_await sim::sleep_for(w.sim, sim::sec(2));  // heartbeats carry commits
  });
  ASSERT_TRUE(ok);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(w.cluster.node(i).state().size(), 5u) << "node " << i;
  }
}

TEST(Raft, NonLeaderRejectsProposals) {
  RaftWorld w;
  RaftNode* l = w.cluster.wait_for_leader();
  ASSERT_NE(l, nullptr);
  RaftNode& follower = w.cluster.node((l->id() + 1) % 3);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    std::vector<std::pair<Key, Value>> writes;
    writes.emplace_back("k", Value("v"));
    auto out = co_await follower.propose(Command(std::move(writes)));
    EXPECT_EQ(out.status, OpStatus::Conflict);
    EXPECT_EQ(follower.leader_hint(), l->id());
  });
  ASSERT_TRUE(ok);
}

TEST(Raft, CasCommandsApplyAtomically) {
  RaftWorld w;
  RaftNode* l = w.cluster.wait_for_leader();
  ASSERT_NE(l, nullptr);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    std::vector<std::pair<Key, Value>> w1;
    w1.emplace_back("lock", Value("me"));
    auto r1 = co_await l->propose(Command(std::move(w1), "lock", Value("")));
    CO_ASSERT_EQ(r1.status, OpStatus::Ok);
    EXPECT_TRUE(r1.applied);  // lock was free
    std::vector<std::pair<Key, Value>> w2;
    w2.emplace_back("lock", Value("other"));
    auto r2 = co_await l->propose(Command(std::move(w2), "lock", Value("")));
    CO_ASSERT_EQ(r2.status, OpStatus::Ok);
    EXPECT_FALSE(r2.applied);  // condition failed: still "me"
    auto v = co_await l->read("lock");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().data, "me");
  });
  ASSERT_TRUE(ok);
}

TEST(Raft, FailoverElectsNewLeaderWithCommittedLog) {
  RaftWorld w;
  RaftNode* l = w.cluster.wait_for_leader();
  ASSERT_NE(l, nullptr);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    std::vector<std::pair<Key, Value>> writes;
    writes.emplace_back("durable", Value("yes"));
    auto out = co_await l->propose(Command(std::move(writes)));
    CO_ASSERT_EQ(out.status, OpStatus::Ok);
    co_await sim::sleep_for(w.sim, sim::sec(1));
  });
  ASSERT_TRUE(ok);
  int old_id = l->id();
  w.cluster.node(old_id).set_down(true);
  RaftNode* nl = w.cluster.wait_for_leader(sim::sec(60));
  ASSERT_NE(nl, nullptr);
  EXPECT_NE(nl->id(), old_id);
  // Committed entries survive the failover (leader-completeness).
  auto it = nl->state().find("durable");
  ASSERT_NE(it, nl->state().end());
  EXPECT_EQ(it->second.data, "yes");
}

TEST(Raft, MinorityPartitionCannotCommit) {
  RaftWorld w;
  RaftNode* l = w.cluster.wait_for_leader();
  ASSERT_NE(l, nullptr);
  // Partition the leader's site away from the other two.
  w.net.partition_sites({l->site()}, {(l->site() + 1) % 3, (l->site() + 2) % 3});
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    std::vector<std::pair<Key, Value>> writes;
    writes.emplace_back("k", Value("ghost"));
    auto out = co_await l->propose(Command(std::move(writes)));
    EXPECT_NE(out.status, OpStatus::Ok);  // no quorum on the minority side
  }, sim::sec(60));
  ASSERT_TRUE(ok);
  // Majority side elects a fresh leader that CAN commit.
  RaftNode* nl = nullptr;
  sim::Time deadline = w.sim.now() + sim::sec(60);
  while (w.sim.now() < deadline) {
    w.sim.run_for(sim::sec(1));
    for (int i = 0; i < 3; ++i) {
      RaftNode& n = w.cluster.node(i);
      if (n.role() == Role::Leader && n.site() != l->site()) nl = &n;
    }
    if (nl) break;
  }
  ASSERT_NE(nl, nullptr);
  bool ok2 = w.runner.run([&]() -> sim::Task<void> {
    std::vector<std::pair<Key, Value>> writes;
    writes.emplace_back("k", Value("real"));
    auto out = co_await nl->propose(Command(std::move(writes)));
    EXPECT_EQ(out.status, OpStatus::Ok);
  }, sim::sec(60));
  ASSERT_TRUE(ok2);
  // Heal: the old leader steps down and converges.
  w.net.heal_partition();
  w.sim.run_for(sim::sec(20));
  EXPECT_NE(w.cluster.node(l->id()).role(), Role::Leader);
  auto it = w.cluster.node(l->id()).state().find("k");
  ASSERT_NE(it, w.cluster.node(l->id()).state().end());
  EXPECT_EQ(it->second.data, "real");  // ghost never committed
}

TEST(Raft, LogsConvergeAfterFollowerOutage) {
  RaftWorld w;
  RaftNode* l = w.cluster.wait_for_leader();
  ASSERT_NE(l, nullptr);
  RaftNode& lagger = w.cluster.node((l->id() + 1) % 3);
  lagger.set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 6; ++i) {
      std::vector<std::pair<Key, Value>> writes;
      // Built stepwise: GCC 12 mis-fires -Werror=restrict on literal +
      // to_string rvalue concats inside coroutine frames.
      std::string k = "k";
      k += std::to_string(i);
      writes.emplace_back(k, Value("v"));
      auto out = co_await l->propose(Command(std::move(writes)));
      CO_ASSERT_EQ(out.status, OpStatus::Ok);
    }
  });
  ASSERT_TRUE(ok);
  lagger.set_down(false);
  w.sim.run_for(sim::sec(10));  // leader repairs the follower's log
  EXPECT_EQ(lagger.state().size(), 6u);
  EXPECT_EQ(lagger.commit_index(), l->commit_index());
}

}  // namespace
}  // namespace music::raftkv
