// Transactional-KV (CockroachDB substitute) tests: the §X-B3 critical
// section recipe, leader tracking, contention, failover.
#include "raftkv/txkv.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "util/world.h"

namespace music::raftkv {
namespace {

struct TxWorld {
  sim::Simulation sim;
  sim::Network net;
  RaftCluster cluster;
  test::TaskRunner runner;

  explicit TxWorld(uint64_t seed = 1)
      : sim(seed),
        net(sim, [] {
          sim::NetworkConfig c;
          c.profile = sim::LatencyProfile::profile_lus();
          return c;
        }()),
        cluster(sim, net, RaftConfig(), {0, 1, 2}),
        runner(sim) {
    cluster.start();
    cluster.wait_for_leader();
  }
};

TEST(TxKv, WriteAndSelect) {
  TxWorld w;
  TxClient tx(w.cluster, 0, "c0");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await tx.cs_update("k", Value("v"));
    CO_ASSERT_TRUE(st.ok());
    auto v = co_await tx.select("k");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().data, "v");
  });
  ASSERT_TRUE(ok);
}

TEST(TxKv, CsEnterIsExclusive) {
  TxWorld w;
  TxClient t1(w.cluster, 0, "c1");
  TxClient t2(w.cluster, 1, "c2");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto e1 = co_await t1.cs_enter("L");
    CO_ASSERT_TRUE(e1.ok());
    // t2 cannot enter while t1 holds the lock row.
    std::vector<std::pair<Key, Value>> writes;
    writes.emplace_back("L", Value("c2"));
    auto attempt = co_await t2.txn_cas(std::move(writes), "L", Value(""));
    CO_ASSERT_EQ(attempt.status, OpStatus::Ok);
    EXPECT_FALSE(attempt.applied);
    auto x1 = co_await t1.cs_exit("L");
    EXPECT_TRUE(x1.ok());
    auto e2 = co_await t2.cs_enter("L");
    EXPECT_TRUE(e2.ok());
    co_await t2.cs_exit("L");
  });
  ASSERT_TRUE(ok);
}

TEST(TxKv, CsExitByNonHolderFails) {
  TxWorld w;
  TxClient t1(w.cluster, 0, "c1");
  TxClient t2(w.cluster, 1, "c2");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await t1.cs_enter("L");
    auto st = co_await t2.cs_exit("L");
    EXPECT_EQ(st.status(), OpStatus::NotLockHolder);
    co_await t1.cs_exit("L");
  });
  ASSERT_TRUE(ok);
}

TEST(TxKv, CriticalSectionRecipeLeavesLockFree) {
  TxWorld w;
  TxClient tx(w.cluster, 0, "c0");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await tx.critical_section("L", "data", Value("x", 10), 5);
    CO_ASSERT_TRUE(st.ok());
    auto lock = co_await tx.select("L");
    CO_ASSERT_TRUE(lock.ok());
    EXPECT_EQ(lock.value().data, "");  // unlocked
    auto v = co_await tx.select("data");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().data, "x");
  });
  ASSERT_TRUE(ok);
}

TEST(TxKv, CostIsTwoConsensusRoundsPerUpdate) {
  // §X-B4: each state update costs 2 consensus operations (entry txn +
  // update/exit txn).  With the client at the leader's site, one consensus
  // round ~ nearest-follower RTT; a batch-1 section should cost ~2 rounds.
  TxWorld w;
  RaftNode* l = w.cluster.leader();
  ASSERT_NE(l, nullptr);
  TxClient tx(w.cluster, l->site(), "c0");
  sim::Time batch1 = 0, batch4 = 0;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await tx.cs_update("warm", Value("w"));  // leader discovery etc.
    sim::Time t0 = w.sim.now();
    co_await tx.critical_section("L", "d", Value("v", 10), 1);
    batch1 = w.sim.now() - t0;
    t0 = w.sim.now();
    co_await tx.critical_section("L", "d", Value("v", 10), 4);
    batch4 = w.sim.now() - t0;
  });
  ASSERT_TRUE(ok);
  // Linear in the batch size: no amortization, unlike MUSIC (§X-B4).
  EXPECT_GT(batch4, 3 * batch1);
  EXPECT_LT(batch4, 6 * batch1);
}

class TxContention : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxContention, ContendingCriticalSectionsSerialize) {
  TxWorld w(GetParam());
  TxClient t1(w.cluster, 0, "c1");
  TxClient t2(w.cluster, 1, "c2");
  int done = 0;
  for (TxClient* t : {&t1, &t2}) {
    sim::spawn(w.sim, [](TxClient& tx, int& d) -> sim::Task<void> {
      auto st = co_await tx.critical_section("L", "d", Value("z", 10), 3);
      EXPECT_TRUE(st.ok());
      ++d;
    }(*t, done));
  }
  w.sim.run_until(sim::sec(300));
  EXPECT_EQ(done, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxContention, ::testing::Values(5, 23, 71));

TEST(TxKv, SurvivesLeaderFailover) {
  TxWorld w;
  TxClient tx(w.cluster, 0, "c0");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await tx.cs_update("a", Value("1"));
    w.cluster.leader()->set_down(true);
    auto st = co_await tx.cs_update("b", Value("2"));
    CO_ASSERT_TRUE(st.ok());
    auto v = co_await tx.select("b");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().data, "2");
  }, sim::sec(300));
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::raftkv
