// Workload-generator edge cases, driven end to end through the scenario
// compiler: zero-client sites, a single-key keyspace under full contention,
// a 100% read mix over never-written keys, and open-loop (poisson/diurnal)
// arrivals actually pacing the load instead of free-running.
#include <gtest/gtest.h>

#include <string>

#include "scenario/run.h"
#include "scenario/spec.h"

namespace music::scn {
namespace {

/// A 1s local-profile music cell with the given workload-block lines.
CellOutcome run_local(const std::string& workload_lines) {
  std::string text =
      "scenario edge\n"
      "protocols music\n"
      "topology {\n"
      "  profiles local\n"
      "}\n"
      "workload {\n"
      "  warmup 200ms\n"
      "  measure 1s\n";  // defaults; later lines in `workload_lines` win
  text += workload_lines;
  text += "}\n";
  Diag d;
  auto spec = ScenarioSpec::parse(text, &d);
  EXPECT_TRUE(spec.has_value()) << d.str();
  EXPECT_EQ(validate(*spec), "");
  return run_cell(expand(*spec).at(0));
}

TEST(ArrivalEdge, ZeroClientSitesAreLegalAndRun) {
  // All clients pinned to site 2; sites 0 and 1 host zero clients.
  EXPECT_EQ(place_clients(2, {0, 0, 1}), (std::vector<int>{0, 0, 2}));
  CellOutcome out = run_local(
      "  mixes 0.5\n  clients 2\n  placement 0,0,1\n  keys 8\n");
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_GT(out.run.completed, 0u);
  EXPECT_EQ(out.violations, 0u);
}

TEST(ArrivalEdge, SingleKeyKeyspaceSerializesCleanly) {
  // Every client contends on one key; the oracle must stay clean.
  CellOutcome single = run_local(
      "  mixes 0\n  clients 4\n  keys 64\n  keying single\n");
  EXPECT_TRUE(single.ok) << single.error;
  EXPECT_GT(single.run.completed, 0u);

  // keys 1 with uniform keying is the same degenerate keyspace.
  CellOutcome one = run_local("  mixes 0\n  clients 4\n  keys 1\n");
  EXPECT_TRUE(one.ok) << one.error;
  EXPECT_GT(one.run.completed, 0u);
}

TEST(ArrivalEdge, PureReadMixOverUnwrittenKeysSucceeds) {
  // 100% reads against keys nothing ever wrote: NotFound is a successful
  // outcome for a read, so nothing may count as failed.
  CellOutcome out = run_local("  mixes 1\n  clients 3\n  keys 16\n");
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_GT(out.run.completed, 0u);
  EXPECT_EQ(out.run.failed, 0u);
}

TEST(ArrivalEdge, PoissonArrivalPacesTheLoad) {
  // Closed loop on the local profile free-runs; a 5 ops/s/client poisson
  // process must complete far fewer ops in the same window.
  CellOutcome closed = run_local("  mixes 1\n  clients 2\n  keys 8\n");
  CellOutcome paced = run_local(
      "  mixes 1\n  clients 2\n  keys 8\n  arrival poisson 5\n");
  ASSERT_TRUE(closed.ok) << closed.error;
  ASSERT_TRUE(paced.ok) << paced.error;
  // ~5 ops/s x 2 clients x 1s measured => on the order of 10 ops.
  EXPECT_GT(paced.run.completed, 0u);
  EXPECT_LT(paced.run.completed, 40u);
  EXPECT_GT(closed.run.completed, paced.run.completed * 4);
}

TEST(ArrivalEdge, DiurnalTroughCompletesLessThanFlatPeak) {
  // Diurnal with a deep trough averages well under the flat poisson rate
  // at the same peak.
  CellOutcome flat = run_local(
      "  mixes 1\n  clients 4\n  keys 8\n  arrival poisson 50\n"
      "  measure 4s\n");
  CellOutcome wavy = run_local(
      "  mixes 1\n  clients 4\n  keys 8\n"
      "  arrival diurnal 50 period 4s low 0\n  measure 4s\n");
  ASSERT_TRUE(flat.ok) << flat.error;
  ASSERT_TRUE(wavy.ok) << wavy.error;
  EXPECT_GT(wavy.run.completed, 0u);
  EXPECT_LT(wavy.run.completed, flat.run.completed);
}

}  // namespace
}  // namespace music::scn
