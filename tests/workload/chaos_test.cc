// ChaosInjector tests: it breaks what it promises, heals on exit, and the
// system keeps serving underneath it.
#include "workload/chaos.h"

#include <gtest/gtest.h>

#include <memory>
#include <string_view>

#include "obs/trace.h"
#include "util/world.h"
#include "workload/driver.h"
#include "workload/runners.h"

namespace music::wl {
namespace {

using test::MusicWorld;
using test::WorldOptions;

TEST(Chaos, InjectsConfiguredFaultKindsAndHeals) {
  MusicWorld w;
  std::vector<core::MusicReplica*> reps;
  for (auto& r : w.replicas) reps.push_back(r.get());
  ChaosConfig cfg;
  cfg.min_gap = sim::sec(1);
  cfg.max_gap = sim::sec(3);
  ChaosInjector chaos(w.store, reps, cfg);
  chaos.start(sim::sec(60));
  w.sim.run_until(sim::sec(90));
  EXPECT_GT(chaos.store_crashes_injected() + chaos.music_crashes_injected() +
                chaos.partitions_injected(),
            5u);
  // Everything healed at the end of the window.
  for (int i = 0; i < w.store.num_replicas(); ++i) {
    EXPECT_FALSE(w.store.replica(i).down()) << i;
  }
  for (auto* m : reps) EXPECT_FALSE(m->down());
  EXPECT_TRUE(w.net.deliverable(w.store.replica(0).node(),
                                w.store.replica(1).node()));
}

TEST(Chaos, KindsCanBeDisabled) {
  MusicWorld w;
  ChaosConfig cfg;
  cfg.min_gap = sim::ms(500);
  cfg.max_gap = sim::sec(1);
  cfg.store_crashes = false;
  cfg.music_crashes = false;
  ChaosInjector chaos(w.store, {}, cfg);  // partitions only
  chaos.start(sim::sec(30));
  w.sim.run_until(sim::sec(40));
  EXPECT_EQ(chaos.store_crashes_injected(), 0u);
  EXPECT_EQ(chaos.music_crashes_injected(), 0u);
  EXPECT_GT(chaos.partitions_injected(), 3u);
}

TEST(Chaos, SystemKeepsServingUnderInjection) {
  WorldOptions opt;
  opt.clients_per_site = 2;
  opt.music.holder_timeout = sim::sec(6);
  opt.music.fd_interval = sim::sec(1);
  MusicWorld w(opt);
  std::vector<core::MusicReplica*> reps;
  for (auto& r : w.replicas) {
    r->start_failure_detector();
    reps.push_back(r.get());
  }
  ChaosInjector chaos(w.store, reps, ChaosConfig{});
  chaos.start(sim::sec(70));

  std::vector<core::MusicClient*> clients;
  for (auto& c : w.clients) clients.push_back(c.get());
  auto workload = std::make_shared<MusicCsWorkload>(clients, "ch", 1, 10);
  DriverConfig cfg;
  cfg.clients = static_cast<int>(clients.size());
  cfg.warmup = sim::sec(2);
  cfg.measure = sim::sec(60);
  cfg.drain = sim::sec(60);
  auto r = run_closed_loop(w.sim, workload, cfg);
  // A majority is always up, so most sections complete despite the faults.
  EXPECT_GT(r.completed, 20u);
  EXPECT_GT(static_cast<double>(r.completed),
            4.0 * static_cast<double>(r.failed));
}

TEST(Chaos, EverythingBrokenIsHealedByUntil) {
  // Outages are clamped to the window: at `until` (not merely "eventually
  // after"), nothing injected is still broken.
  MusicWorld w;
  std::vector<core::MusicReplica*> reps;
  for (auto& r : w.replicas) reps.push_back(r.get());
  ChaosConfig cfg;
  cfg.min_gap = sim::sec(1);
  cfg.max_gap = sim::sec(2);
  cfg.min_outage = sim::sec(2);
  cfg.max_outage = sim::sec(8);  // would overshoot the window unclamped
  ChaosInjector chaos(w.store, reps, cfg);
  sim::Time until = sim::sec(30);
  chaos.start(until);
  w.sim.run_until(until);
  EXPECT_EQ(chaos.nemesis().open_faults(), 0u);
  EXPECT_EQ(w.net.active_partitions(), 0u);
  for (int i = 0; i < w.store.num_replicas(); ++i) {
    EXPECT_FALSE(w.store.replica(i).down()) << i;
  }
  for (auto* m : reps) EXPECT_FALSE(m->down());
}

TEST(Chaos, InjectedFaultCountersMatchScheduleAndSpans) {
  obs::Tracer tracer;
  MusicWorld w;
  w.sim.set_tracer(&tracer);
  std::vector<core::MusicReplica*> reps;
  for (auto& r : w.replicas) reps.push_back(r.get());
  ChaosConfig cfg;
  cfg.min_gap = sim::sec(1);
  cfg.max_gap = sim::sec(3);
  ChaosInjector chaos(w.store, reps, cfg);
  chaos.start(sim::sec(60));
  w.sim.run_until(sim::sec(70));

  // The injector's own counters agree with the nemesis engine's.
  const auto& c = chaos.nemesis().counters();
  EXPECT_EQ(chaos.store_crashes_injected(), c.store_crashes);
  EXPECT_EQ(chaos.music_crashes_injected(), c.music_crashes);
  EXPECT_EQ(chaos.partitions_injected(), c.partitions);
  uint64_t total = chaos.store_crashes_injected() +
                   chaos.music_crashes_injected() +
                   chaos.partitions_injected();
  EXPECT_GT(total, 0u);
  EXPECT_EQ(c.heals, total);  // every injected fault was healed

  // One "fault.*" span per injected fault, every one closed (outage over).
  uint64_t fault_spans = 0;
  for (const auto& s : tracer.spans()) {
    if (std::string_view(s.name).substr(0, 6) != "fault.") continue;
    ++fault_spans;
    EXPECT_TRUE(s.finished()) << s.name << " " << s.detail;
  }
  EXPECT_EQ(fault_spans, total);
}

TEST(Chaos, DeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    MusicWorld w;
    ChaosConfig cfg;
    cfg.seed = seed;
    cfg.min_gap = sim::sec(1);
    cfg.max_gap = sim::sec(2);
    ChaosInjector chaos(w.store, {}, cfg);
    chaos.start(sim::sec(40));
    w.sim.run_until(sim::sec(50));
    return std::tuple<uint64_t, uint64_t>(chaos.store_crashes_injected(),
                                          chaos.partitions_injected());
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace music::wl
