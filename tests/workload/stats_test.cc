// wl::Samples edge cases: empty sets, single samples, percentile bounds,
// merging unsorted inputs, CDF shape.
#include "workload/stats.h"

#include <gtest/gtest.h>

namespace music::wl {
namespace {

TEST(Samples, EmptyReportsZeros) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean_ms(), 0.0);
  EXPECT_EQ(s.stddev_ms(), 0.0);
  EXPECT_EQ(s.percentile_ms(0), 0.0);
  EXPECT_EQ(s.percentile_ms(50), 0.0);
  EXPECT_EQ(s.percentile_ms(100), 0.0);
  EXPECT_EQ(s.min_ms(), 0.0);
  EXPECT_EQ(s.max_ms(), 0.0);
  EXPECT_TRUE(s.cdf().empty());
}

TEST(Samples, SingleSampleIsEveryPercentile) {
  Samples s;
  s.add(sim::ms(5));
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean_ms(), 5.0);
  EXPECT_EQ(s.stddev_ms(), 0.0);  // sample stddev needs n >= 2
  EXPECT_DOUBLE_EQ(s.percentile_ms(0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(100), 5.0);
}

TEST(Samples, PercentileBoundsAreMinAndMax) {
  Samples s;
  // Deliberately unsorted insertion order.
  for (int v : {30, 10, 50, 20, 40}) s.add(sim::ms(v));
  EXPECT_DOUBLE_EQ(s.percentile_ms(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(100), 50.0);
  EXPECT_DOUBLE_EQ(s.min_ms(), 10.0);
  EXPECT_DOUBLE_EQ(s.max_ms(), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(50), 30.0);
  // Interpolated percentile between rank neighbours.
  EXPECT_DOUBLE_EQ(s.percentile_ms(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(12.5), 15.0);
}

TEST(Samples, MeanAndStddev) {
  Samples s;
  for (int v : {2, 4, 4, 4, 5, 5, 7, 9}) s.add(sim::ms(v));
  EXPECT_DOUBLE_EQ(s.mean_ms(), 5.0);
  // Sample (n-1) stddev of the classic set {2,4,4,4,5,5,7,9} is ~2.138.
  EXPECT_NEAR(s.stddev_ms(), 2.138, 0.001);
}

TEST(Samples, MergeUnsortedInputsKeepsOrderStatisticsCorrect) {
  Samples a;
  for (int v : {90, 10, 50}) a.add(sim::ms(v));
  // Force a to sort itself, then merge unsorted data in: percentiles must
  // re-sort, not trust the stale order.
  EXPECT_DOUBLE_EQ(a.max_ms(), 90.0);
  Samples b;
  for (int v : {100, 20}) b.add(sim::ms(v));
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.min_ms(), 10.0);
  EXPECT_DOUBLE_EQ(a.max_ms(), 100.0);
  EXPECT_DOUBLE_EQ(a.percentile_ms(50), 50.0);
}

TEST(Samples, MergeEmptyIsANoOp) {
  Samples a;
  a.add(sim::ms(3));
  Samples empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean_ms(), 3.0);
}

TEST(Samples, ReservoirCapsRetentionButCountsExactly) {
  Samples s;
  s.enable_reservoir(100, /*seed=*/7);
  for (int v = 1; v <= 10000; ++v) s.add(sim::ms((v % 200) + 1));
  EXPECT_EQ(s.recorded(), 10000u);  // throughput numerator stays exact
  EXPECT_EQ(s.count(), 100u);       // retention capped at the reservoir
  EXPECT_EQ(s.reservoir_cap(), 100u);
  // The stream is uniform over [1, 200] ms; an unbiased 100-sample
  // reservoir lands near the true mean of 100.5 ms.
  EXPECT_NEAR(s.mean_ms(), 100.5, 25.0);
  EXPECT_GE(s.min_ms(), 1.0);
  EXPECT_LE(s.max_ms(), 200.0);
}

TEST(Samples, ExactModeRetainsEverySample) {
  Samples s;  // cap 0: the pre-reservoir default
  for (int v = 1; v <= 1000; ++v) s.add(sim::ms(v));
  EXPECT_EQ(s.recorded(), 1000u);
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.percentile_ms(100), 1000.0);
}

TEST(Samples, ReservoirSeedsDecorrelate) {
  Samples a;
  Samples b;
  a.enable_reservoir(50, 1);
  b.enable_reservoir(50, 2);
  for (int v = 1; v <= 5000; ++v) {
    a.add(sim::ms(v));
    b.add(sim::ms(v));
  }
  EXPECT_EQ(a.recorded(), b.recorded());
  EXPECT_EQ(a.count(), b.count());
  // Same stream, different seeds: the retained subsamples differ (the
  // medians of two independent 50-of-5000 draws almost surely do).
  EXPECT_NE(a.percentile_ms(50), b.percentile_ms(50));
}

TEST(Samples, MergeAfterReservoirKeepsExactRecordedCount) {
  Samples a;
  a.enable_reservoir(10, 3);
  for (int v = 1; v <= 100; ++v) a.add(sim::ms(v));
  Samples b;
  for (int v = 1; v <= 5; ++v) b.add(sim::ms(v));
  a.merge(b);
  EXPECT_EQ(a.recorded(), 105u);  // exact across the merge
  EXPECT_EQ(a.count(), 15u);      // union of retained subsamples
}

TEST(Samples, CdfIsMonotoneAndEndsAtMax) {
  Samples s;
  for (int v = 1; v <= 100; ++v) s.add(sim::ms(v));
  auto cdf = s.cdf(10);
  ASSERT_EQ(cdf.size(), 10u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);   // latencies nondecreasing
    EXPECT_GT(cdf[i].second, cdf[i - 1].second); // fractions increasing
  }
  EXPECT_DOUBLE_EQ(cdf.back().first, 100.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  EXPECT_TRUE(s.cdf(0).empty());
}

}  // namespace
}  // namespace music::wl
