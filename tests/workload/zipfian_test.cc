// Zipfian generator shape and zeta memoisation.
//
// The distribution test pins the generator to the closed form: under a
// Zipfian with skew theta over n items, rank r is drawn with probability
// 1 / ((r+1)^theta * zeta(n, theta)).  The cache test pins the satellite
// contract: constructing many generators with the same (n, theta) — the
// cluster bench builds 10^4 of them — computes the O(n) zeta sum once.
#include "workload/zipfian.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace music::wl {
namespace {

TEST(Zipfian, HotKeyMassMatchesClosedForm) {
  constexpr uint64_t kN = 100;
  constexpr double kTheta = 0.99;
  constexpr int kDraws = 200000;
  Zipfian z(kN, kTheta);
  sim::Rng rng(42);
  std::vector<int> hist(kN, 0);
  for (int i = 0; i < kDraws; ++i) {
    uint64_t r = z.next(rng);
    ASSERT_LT(r, kN);
    hist[static_cast<size_t>(r)] += 1;
  }
  const double zetan = Zipfian::zeta(kN, kTheta);
  // Ranks 0 and 1 take the generator's exact branches: their masses are
  // 1/zeta and 2^-theta/zeta by construction, so 2e5 draws must land
  // within a few standard errors (se(rank0) ~ 0.09%).
  for (uint64_t r = 0; r < 2; ++r) {
    double expect = std::pow(static_cast<double>(r + 1), -kTheta) / zetan;
    double got = static_cast<double>(hist[static_cast<size_t>(r)]) / kDraws;
    EXPECT_NEAR(got, expect, expect * 0.05) << "rank " << r;
  }
  // The tail uses Gray et al.'s continuous inversion, exact only in
  // aggregate: compare the CUMULATIVE mass of the top 10 ranks against the
  // closed form, where the per-rank discretisation error washes out.
  double head_expect = 0.0;
  int head_got = 0;
  for (uint64_t r = 0; r < 10; ++r) {
    head_expect += std::pow(static_cast<double>(r + 1), -kTheta) / zetan;
    head_got += hist[static_cast<size_t>(r)];
  }
  EXPECT_NEAR(static_cast<double>(head_got) / kDraws, head_expect,
              head_expect * 0.05);
  // And the skew is real: rank 0 alone carries >10% of all draws at
  // theta=0.99, n=100 (closed form: ~0.193).
  EXPECT_GT(hist[0], kDraws / 10);
}

TEST(Zipfian, ThetaZeroIsUniform) {
  constexpr uint64_t kN = 16;
  Zipfian z(kN, 0.0);
  sim::Rng rng(7);
  std::vector<int> hist(kN, 0);
  constexpr int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) hist[z.next(rng)] += 1;
  for (uint64_t r = 0; r < kN; ++r) {
    EXPECT_NEAR(hist[r], kDraws / static_cast<int>(kN),
                kDraws / static_cast<int>(kN) / 10)
        << "rank " << r;
  }
}

TEST(Zipfian, ZetaIsComputedOncePerDistinctShape) {
  // Use an (n, theta) pair no other test touches so the cache state is
  // ours regardless of test order.
  constexpr uint64_t kN = 77777;
  constexpr double kTheta = 0.87;
  Zipfian first(kN, kTheta);
  uint64_t after_first = Zipfian::zeta_cache_computations();
  size_t entries = Zipfian::zeta_cache_size();
  // 1000 more generators with the identical shape: zero new O(n) sums.
  for (int i = 0; i < 1000; ++i) Zipfian again(kN, kTheta);
  EXPECT_EQ(Zipfian::zeta_cache_computations(), after_first);
  EXPECT_EQ(Zipfian::zeta_cache_size(), entries);
  // A different shape is a genuine miss.
  Zipfian other(kN + 1, kTheta);
  EXPECT_GT(Zipfian::zeta_cache_computations(), after_first);
}

TEST(Zipfian, DrawsAreDeterministicPerRngSeed) {
  Zipfian a(1000, 0.99);
  Zipfian b(1000, 0.99);
  sim::Rng r1(123);
  sim::Rng r2(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(r1), b.next(r2));
  }
}

}  // namespace
}  // namespace music::wl
