// Workload harness tests: statistics, Zipfian distribution, the closed-loop
// and sequential drivers.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "util/world.h"
#include "workload/driver.h"
#include "workload/runners.h"
#include "workload/stats.h"
#include "workload/zipfian.h"

namespace music::wl {
namespace {

TEST(Samples, MeanAndStddev) {
  Samples s;
  for (auto v : {1000, 2000, 3000, 4000, 5000}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean_ms(), 3.0);
  EXPECT_NEAR(s.stddev_ms(), 1.5811, 0.001);
  EXPECT_EQ(s.count(), 5u);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i * 1000);
  EXPECT_NEAR(s.percentile_ms(50), 50.5, 0.6);
  EXPECT_NEAR(s.percentile_ms(99), 99.0, 1.1);
  EXPECT_DOUBLE_EQ(s.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(s.max_ms(), 100.0);
}

TEST(Samples, CdfIsMonotone) {
  Samples s;
  sim::Rng rng(3);
  for (int i = 0; i < 500; ++i) s.add(rng.uniform_int(100, 100000));
  auto cdf = s.cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Samples, MergeCombines) {
  Samples a, b;
  a.add(1000);
  b.add(3000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_ms(), 2.0);
}

TEST(Zipfian, IsSkewedTowardLowRanks) {
  Zipfian z(1000);
  sim::Rng rng(7);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) counts[z.next(rng)]++;
  // Rank 0 should receive roughly 1/zeta(1000,0.99) ~ 13% of draws.
  EXPECT_GT(counts[0], kDraws / 20);
  EXPECT_GT(counts[0], counts[10]);
  // All draws in range.
  for (const auto& [k, v] : counts) {
    (void)v;
    EXPECT_LT(k, 1000u);
  }
}

TEST(Zipfian, CoversTheTail) {
  Zipfian z(100);
  sim::Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.next(rng)]++;
  EXPECT_GT(counts.size(), 80u);  // most of the keyspace gets touched
}

/// A deterministic workload for driver tests: sleeps then succeeds.
class SleepWorkload : public Workload {
 public:
  SleepWorkload(sim::Simulation& s, sim::Duration d) : sim_(s), d_(d) {}
  sim::Task<bool> run_once(int) override {
    co_await sim::sleep_for(sim_, d_);
    co_return true;
  }

 private:
  sim::Simulation& sim_;
  sim::Duration d_;
};

TEST(Driver, ClosedLoopThroughputMatchesLittleLaw) {
  sim::Simulation s(1);
  auto w = std::make_shared<SleepWorkload>(s, sim::ms(10));
  DriverConfig cfg;
  cfg.clients = 4;
  cfg.warmup = sim::sec(1);
  cfg.measure = sim::sec(10);
  auto r = run_closed_loop(s, w, cfg);
  // 4 clients / 10ms = 400 ops/s.
  EXPECT_NEAR(r.throughput(), 400.0, 10.0);
  EXPECT_NEAR(r.latency.mean_ms(), 10.0, 0.5);
  EXPECT_EQ(r.failed, 0u);
}

TEST(Driver, SequentialRunsExactOpCount) {
  sim::Simulation s(1);
  auto w = std::make_shared<SleepWorkload>(s, sim::ms(5));
  auto r = run_sequential(s, w, 37);
  EXPECT_EQ(r.completed, 37u);
  EXPECT_NEAR(r.latency.mean_ms(), 5.0, 0.1);
}

TEST(MusicCsWorkloadIntegration, RunsFullCriticalSections) {
  test::WorldOptions opt;
  opt.clients_per_site = 2;
  test::MusicWorld world(opt);
  std::vector<core::MusicClient*> clients;
  for (auto& c : world.clients) clients.push_back(c.get());
  auto w = std::make_shared<MusicCsWorkload>(clients, "bench", 2, 10);
  DriverConfig cfg;
  cfg.clients = static_cast<int>(clients.size());
  cfg.warmup = sim::sec(2);
  cfg.measure = sim::sec(20);
  auto r = run_closed_loop(world.sim, w, cfg);
  EXPECT_GT(r.completed, 10u);
  EXPECT_EQ(r.failed, 0u);
  // A critical section takes ~0.6s; 6 clients -> ~10/s.
  EXPECT_GT(r.throughput(), 4.0);
  EXPECT_LT(r.throughput(), 20.0);
}

}  // namespace
}  // namespace music::wl
