// Exporter format contracts: Chrome trace_event JSON and metrics dumps.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace music::obs {
namespace {

/// Minimal structural JSON check: braces/brackets balance and never go
/// negative outside strings.  (Catches truncation and escaping bugs without
/// a JSON library.)
bool balanced_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(Export, ChromeTraceShapeAndOrdering) {
  Tracer t;
  // Begin out of natural export order is impossible (time is monotone), but
  // end order differs from begin order; both spans must appear sorted by ts.
  SpanId a = t.begin("outer", 100, 0, 0, 1);
  SpanId b = t.begin("inner", 200, a, 1, 2, "k\"ey");  // quote needs escaping
  t.end(b, 250);
  t.end(a, 400);
  SpanId open = t.begin("unfinished", 500, 0);
  (void)open;

  std::string json = chrome_trace_json(t);
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Metadata rows name each site (pid).
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Both finished spans exported as complete events with durations.
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100,\"dur\":300"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":200,\"dur\":50"), std::string::npos);
  // outer (ts=100) must precede inner (ts=200) in the stream.
  EXPECT_LT(json.find("\"name\":\"outer\""), json.find("\"name\":\"inner\""));
  // Unfinished spans are skipped.
  EXPECT_EQ(json.find("unfinished"), std::string::npos);
  // The quote inside the detail string is escaped.
  EXPECT_NE(json.find("k\\\"ey"), std::string::npos);
  // Parent linkage is carried in args.
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos);
}

TEST(Export, ChromeTraceEmptyTracer) {
  Tracer t;
  std::string json = chrome_trace_json(t);
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Export, MetricsJsonShape) {
  MetricsRegistry reg;
  reg.set("net.msgs.sent", 42);
  reg.histogram("span.op").record(100);
  reg.histogram("span.op").record(300);
  std::string json = metrics_json(reg);
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"net.msgs.sent\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"span.op\": {\"count\": 2, \"sum\": 400"),
            std::string::npos);
}

TEST(Export, MetricsCsvLongFormat) {
  MetricsRegistry reg;
  reg.set("a.counter", 7);
  reg.histogram("b.histo").record(50);
  std::string csv = metrics_csv(reg);
  EXPECT_EQ(csv.rfind("metric,kind,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("a.counter,counter,value,7\n"), std::string::npos);
  EXPECT_NE(csv.find("b.histo,histogram,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("b.histo,histogram,min,50\n"), std::string::npos);
  EXPECT_NE(csv.find("b.histo,histogram,max,50\n"), std::string::npos);
}

TEST(Export, WriteFileRoundTrip) {
  std::string path = ::testing::TempDir() + "obs_export_test.json";
  ASSERT_TRUE(write_file(path, "{\"ok\":1}\n"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "{\"ok\":1}\n");
}

TEST(Export, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(write_file("/nonexistent-dir-xyz/file.json", "x"));
}

}  // namespace
}  // namespace music::obs
