// Tracer/Span unit tests: parent rollup, lifecycle, overflow, ancestry.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace music::obs {
namespace {

TEST(Trace, BeginEndRecordsTimesAndIdentity) {
  Tracer t;
  SpanId id = t.begin("op", 100, /*parent=*/0, /*site=*/2, /*node=*/7, "key1");
  ASSERT_NE(id, 0u);
  const Span* s = t.find(id);
  ASSERT_NE(s, nullptr);
  EXPECT_STREQ(s->name, "op");
  EXPECT_EQ(s->begin_us, 100);
  EXPECT_FALSE(s->finished());
  EXPECT_EQ(s->duration_us(), -1);
  EXPECT_EQ(s->site, 2);
  EXPECT_EQ(s->node, 7);
  EXPECT_EQ(s->detail, "key1");

  t.end(id, 250);
  s = t.find(id);
  EXPECT_TRUE(s->finished());
  EXPECT_EQ(s->end_us, 250);
  EXPECT_EQ(s->duration_us(), 150);
}

TEST(Trace, EndIsIdempotentAndIgnoresUnknownIds) {
  Tracer t;
  SpanId id = t.begin("op", 10, 0);
  t.end(id, 20);
  t.end(id, 99);  // second end must not move end_us
  EXPECT_EQ(t.find(id)->end_us, 20);
  t.end(0, 50);    // no-span context
  t.end(777, 50);  // never allocated
  EXPECT_EQ(t.spans().size(), 1u);
}

TEST(Trace, MessagesAndRttsRollUpTheParentChain) {
  Tracer t;
  SpanId root = t.begin("client.op", 0, 0);
  SpanId mid = t.begin("music.op", 1, root);
  SpanId leaf = t.begin("store.put", 2, mid);

  t.add_message(leaf, /*cross_site=*/true);
  t.add_message(leaf, /*cross_site=*/false);
  t.add_rtts(leaf, 1);
  t.add_message(mid, true);
  t.add_rtts(root, 4);

  EXPECT_EQ(t.find(leaf)->msgs, 2u);
  EXPECT_EQ(t.find(leaf)->wan_msgs, 1u);
  EXPECT_EQ(t.find(leaf)->rtts, 1u);
  EXPECT_EQ(t.find(mid)->msgs, 3u);
  EXPECT_EQ(t.find(mid)->wan_msgs, 2u);
  EXPECT_EQ(t.find(mid)->rtts, 1u);
  EXPECT_EQ(t.find(root)->msgs, 3u);
  EXPECT_EQ(t.find(root)->wan_msgs, 2u);
  EXPECT_EQ(t.find(root)->rtts, 5u);
}

TEST(Trace, CountersOnNoSpanContextAreDropped) {
  Tracer t;
  t.add_message(0, true);
  t.add_rtts(0, 3);
  EXPECT_TRUE(t.spans().empty());
}

TEST(Trace, OverflowDropsAndCounts) {
  Tracer t(/*max_spans=*/2);
  EXPECT_NE(t.begin("a", 0, 0), 0u);
  EXPECT_NE(t.begin("b", 1, 0), 0u);
  EXPECT_EQ(t.begin("c", 2, 0), 0u);
  EXPECT_EQ(t.begin("d", 3, 0), 0u);
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.dropped_spans(), 2u);
  // Counters against the dropped context (0) must not crash or misattribute.
  t.add_message(0, true);
  EXPECT_EQ(t.find(1)->msgs, 0u);
}

TEST(Trace, RenderAncestryInnermostFirst) {
  Tracer t;
  SpanId root = t.begin("client.put", 0, 0, 0, 0, "k");
  SpanId leaf = t.begin("store.put", 5, root, 1, 3, "k");
  std::string anc = t.render_ancestry(leaf);
  // Innermost first, then its parent.
  size_t store_pos = anc.find("store.put");
  size_t client_pos = anc.find("client.put");
  ASSERT_NE(store_pos, std::string::npos);
  ASSERT_NE(client_pos, std::string::npos);
  EXPECT_LT(store_pos, client_pos);
  EXPECT_TRUE(t.render_ancestry(0).empty());
}

TEST(Trace, EndFeedsRegistryHistogramAndCounter) {
  Tracer t;
  MetricsRegistry reg;
  t.set_registry(&reg);
  SpanId id = t.begin("music.acquire_lock", 100, 0);
  t.end(id, 400);
  ASSERT_EQ(reg.histograms().count("span.music.acquire_lock"), 1u);
  const Histogram& h = reg.histograms().at("span.music.acquire_lock");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 300);
  EXPECT_EQ(reg.counters().at("span.music.acquire_lock.count").value, 1u);
}

}  // namespace
}  // namespace music::obs
