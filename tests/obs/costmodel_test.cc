// Integration: the tracer measures exactly the WAN round trips the paper's
// §X-B4 cost table declares, tracing never perturbs the simulation, and the
// disabled path allocates nothing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "core/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/span.h"
#include "util/world.h"

// Global allocation counter for the zero-cost-when-disabled test.  The
// default operator new[] forwards here, so one override pair suffices.
namespace {
size_t g_allocs = 0;
}

// noinline: if GCC 12 inlines these malloc/free bodies into callers it
// pairs the free() against the *declared* operator new and mis-fires
// -Werror=mismatched-new-delete; kept out-of-line they pair correctly.
[[gnu::noinline]] void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
[[gnu::noinline]] void operator delete(void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}

namespace music::obs {
namespace {

using test::MusicWorld;
using test::WorldOptions;

uint64_t root_rtts(const Tracer& t, const char* name) {
  for (const Span& s : t.spans()) {
    if (s.parent == 0 && s.finished() && std::strcmp(s.name, name) == 0) {
      return s.rtts;
    }
  }
  return ~uint64_t{0};
}

sim::Task<void> one_section(core::MusicClient& c) {
  auto ref = co_await c.create_lock_ref("cost");
  co_await c.acquire_lock_blocking("cost", ref.value());
  co_await c.critical_put("cost", ref.value(), Value("v"));
  co_await c.critical_get("cost", ref.value());
  co_await c.release_lock("cost", ref.value());
}

// The §X-B4 cost table, measured: createLockRef and releaseLock each run
// one LWT (4 round trips: prepare, read, accept, commit); acquireLock's
// grant is one quorum read of the synchFlag; criticalPut (Quorum mode) and
// criticalGet are one quorum round each.
TEST(ObsCostModel, Xb4RoundTripsUnderLUsEu) {
  WorldOptions opt;
  opt.profile = sim::LatencyProfile::profile_luseu();
  opt.net.jitter_frac = 0.0;  // deterministic latencies, same counts
  MusicWorld w(opt);
  Tracer tracer;
  w.sim.set_tracer(&tracer);
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await one_section(c);
  });
  ASSERT_TRUE(ok);
  w.sim.set_tracer(nullptr);

  EXPECT_EQ(root_rtts(tracer, "client.create_lock_ref"), 4u);
  EXPECT_EQ(root_rtts(tracer, "client.acquire_lock"), 1u);
  EXPECT_EQ(root_rtts(tracer, "client.critical_put"), 1u);
  EXPECT_EQ(root_rtts(tracer, "client.critical_get"), 1u);
  EXPECT_EQ(root_rtts(tracer, "client.release_lock"), 4u);
}

// Tracing must be an observer: a traced run and an untraced run with the
// same seed execute the identical event sequence — same messages, same
// events, same final clock.
TEST(ObsCostModel, TracingDoesNotPerturbTheSimulation) {
  struct Fingerprint {
    uint64_t msgs, wan, events;
    int64_t now;
  };
  auto run = [](bool traced) {
    WorldOptions opt;
    opt.seed = 42;
    MusicWorld w(opt);
    Tracer tracer;
    if (traced) w.sim.set_tracer(&tracer);
    auto& c = w.client(0);
    bool ok = w.runner.run([&]() -> sim::Task<void> {
      for (int i = 0; i < 3; ++i) co_await one_section(c);
    });
    EXPECT_TRUE(ok);
    if (traced) {
      EXPECT_GT(tracer.spans().size(), 0u);
    }
    return Fingerprint{w.net.messages_sent(), w.net.wan_messages_sent(),
                       w.sim.events_run(), w.sim.now()};
  };
  Fingerprint off = run(false);
  Fingerprint on = run(true);
  EXPECT_EQ(off.msgs, on.msgs);
  EXPECT_EQ(off.wan, on.wan);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.now, on.now);
}

// With no tracer installed, the instrumentation hot path (OpSpan ctor/dtor,
// trace_rtts) is two loads and a branch: no heap allocations at all.
TEST(ObsCostModel, DisabledPathDoesNotAllocate) {
  sim::Simulation s(1);
  ASSERT_EQ(s.tracer(), nullptr);
  size_t before = g_allocs;
  for (int i = 0; i < 1000; ++i) {
    sim::OpSpan span(s, "probe", 0, 0, "some-key-detail");
    sim::trace_rtts(s, 1);
    span.finish();
  }
  EXPECT_EQ(g_allocs, before);
}

// Span counters decompose the network totals: the sum of root-span message
// counts equals the messages attributable to client operations, and every
// WAN message the tracer saw is in the network's WAN counter.
TEST(ObsCostModel, SpanMessageCountsMatchNetworkCounters) {
  WorldOptions opt;
  opt.net.jitter_frac = 0.0;
  MusicWorld w(opt);
  Tracer tracer;
  MetricsRegistry reg;
  tracer.set_registry(&reg);
  w.sim.set_tracer(&tracer);
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await one_section(c);
  });
  ASSERT_TRUE(ok);
  w.sim.set_tracer(nullptr);

  uint64_t root_msgs = 0, root_wan = 0;
  for (const Span& s : tracer.spans()) {
    if (s.parent != 0) continue;
    root_msgs += s.msgs;
    root_wan += s.wan_msgs;
  }
  // Background services (failure detector, hints) may send outside any
  // span, so root spans cover at most the network totals — and for this
  // quiet world, the client ops dominate.
  EXPECT_LE(root_wan, w.net.wan_messages_sent());
  EXPECT_LE(root_msgs, w.net.messages_sent());
  EXPECT_GT(root_msgs, 0u);

  // The registry got per-span-name histograms via the tracer.
  EXPECT_GE(reg.histograms().count("span.client.critical_put"), 1u);

  // Network export lands per-kind and per-pair counters in the registry.
  w.net.export_metrics(reg);
  EXPECT_EQ(reg.counters().at("net.msgs.sent").value, w.net.messages_sent());
  uint64_t pair_total = 0;
  for (const auto& [name, ctr] : reg.counters()) {
    if (name.rfind("net.pair.", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".msgs") == 0) {
      pair_total += ctr.value;
    }
  }
  EXPECT_EQ(pair_total, w.net.messages_sent());
}

}  // namespace
}  // namespace music::obs
