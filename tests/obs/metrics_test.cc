// Histogram bucket math, percentile accuracy, and registry behavior.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace music::obs {
namespace {

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (int v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 55);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
  // Values below the exact-bucket limit are recorded with no rounding.
  EXPECT_EQ(h.percentile(0), 1);
  EXPECT_EQ(h.percentile(100), 10);
  EXPECT_EQ(h.percentile(50), 5);  // floor-rank: floor(0.5 * 9) + 1 = rank 5
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(Histogram, BucketRoundTripAndMonotonicity) {
  size_t prev = 0;
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{31}, int64_t{32},
                    int64_t{33}, int64_t{100}, int64_t{1000}, int64_t{123456},
                    int64_t{87654321}, int64_t{1} << 40, int64_t{1} << 62}) {
    size_t idx = Histogram::bucket_for(v);
    ASSERT_LT(idx, Histogram::num_buckets()) << v;
    EXPECT_GE(idx, prev) << v;  // larger values never map to earlier buckets
    prev = idx;
    int64_t lb = Histogram::bucket_lower_bound(idx);
    EXPECT_LE(lb, v) << v;
    EXPECT_EQ(Histogram::bucket_for(lb), idx) << v;  // lb is in its bucket
    // Log-linear guarantee: 16 sub-buckets per octave -> <= 1/16 error.
    if (v > 0) {
      EXPECT_GE(lb, v - (v >> 4) - 1) << v;
    }
  }
}

TEST(Histogram, PercentileRelativeErrorIsBounded) {
  Histogram h;
  for (int64_t v = 1000; v <= 100000; v += 1000) h.record(v);
  int64_t p50 = h.percentile(50);
  // True median of 1000..100000 step 1000 is 50500; accept bucket rounding.
  EXPECT_GE(p50, 50500 - (50500 >> 4) - 1);
  EXPECT_LE(p50, 50500);
  int64_t p100 = h.percentile(100);
  EXPECT_GE(p100, 100000 - (100000 >> 4) - 1);
  EXPECT_LE(p100, 100000);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.record(777);
  EXPECT_EQ(h.count(), 1u);
  for (double p : {0.0, 50.0, 99.9, 100.0}) {
    int64_t got = h.percentile(p);
    EXPECT_LE(got, 777) << p;
    EXPECT_GE(got, 777 - (777 >> 4) - 1) << p;
  }
}

TEST(Registry, CountersAndHistogramsAreStableReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("net.msgs.sent");
  c.add(3);
  reg.add("net.msgs.sent", 2);
  reg.set("sim.events", 100);
  EXPECT_EQ(reg.counters().at("net.msgs.sent").value, 5u);
  EXPECT_EQ(reg.counters().at("sim.events").value, 100u);

  Histogram& h = reg.histogram("span.op");
  h.record(10);
  reg.histogram("span.op").record(20);
  EXPECT_EQ(&h, &reg.histogram("span.op"));
  EXPECT_EQ(reg.histograms().at("span.op").count(), 2u);
}

TEST(Registry, ExportOrderIsDeterministic) {
  MetricsRegistry reg;
  reg.add("zeta");
  reg.add("alpha");
  reg.add("mid");
  auto it = reg.counters().begin();
  EXPECT_EQ(it->first, "alpha");
  ++it;
  EXPECT_EQ(it->first, "mid");
  ++it;
  EXPECT_EQ(it->first, "zeta");
}

}  // namespace
}  // namespace music::obs
