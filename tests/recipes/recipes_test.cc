// Recipe tests: atomic counter/map/queue and leader election over MUSIC.
#include "recipes/recipes.h"

#include <gtest/gtest.h>

#include "util/world.h"

namespace music::recipes {
namespace {

using test::MusicWorld;
using test::WorldOptions;

TEST(AtomicCounter, AddAndGet) {
  MusicWorld w;
  AtomicCounter c(w.client(0), "cnt");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto v1 = co_await c.add(5);
    CO_ASSERT_TRUE(v1.ok());
    EXPECT_EQ(v1.value(), 5);
    auto v2 = co_await c.add(-2);
    CO_ASSERT_TRUE(v2.ok());
    EXPECT_EQ(v2.value(), 3);
    auto g = co_await c.get();
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value(), 3);
  });
  ASSERT_TRUE(ok);
}

TEST(AtomicCounter, ConcurrentAddsNeverLoseIncrements) {
  MusicWorld w;
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    sim::spawn(w.sim, [](MusicWorld& world, int ci, int& d) -> sim::Task<void> {
      AtomicCounter c(world.client(static_cast<size_t>(ci)), "shared");
      for (int k = 0; k < 4; ++k) {
        auto r = co_await c.add(1);
        EXPECT_TRUE(r.ok());
      }
      ++d;
    }(w, i, done));
  }
  w.sim.run_until(sim::sec(600));
  ASSERT_EQ(done, 3);
  AtomicCounter c(w.client(0), "shared");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto g = co_await c.get();
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value(), 12);  // exactly: MUSIC's lock serializes the RMWs
  });
  ASSERT_TRUE(ok);
}

TEST(AtomicCounter, CompareAndSet) {
  MusicWorld w;
  AtomicCounter c(w.client(0), "cas");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto r1 = co_await c.compare_and_set(0, 10);
    CO_ASSERT_TRUE(r1.ok());
    EXPECT_TRUE(r1.value().first);
    auto r2 = co_await c.compare_and_set(0, 99);  // stale expectation
    CO_ASSERT_TRUE(r2.ok());
    EXPECT_FALSE(r2.value().first);
    EXPECT_EQ(r2.value().second, 10);
  });
  ASSERT_TRUE(ok);
}

TEST(AtomicMapCodec, RoundTripsWithEscaping) {
  std::vector<std::pair<std::string, std::string>> kvs{
      {"plain", "value"},
      {"with=eq", "and\nnewline"},
      {"pct%", "%%"},
      {"", "empty-key"},
  };
  auto decoded = AtomicMap::decode(AtomicMap::encode(kvs));
  EXPECT_EQ(decoded, kvs);
}

TEST(AtomicMap, PutGetEraseSize) {
  MusicWorld w;
  AtomicMap m(w.client(0), "map");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await m.put_field("name", "alice");
    co_await m.put_field("role", "admin");
    auto g = co_await m.get_field("name");
    CO_ASSERT_TRUE(g.ok());
    CO_ASSERT_TRUE(g.value().has_value());
    EXPECT_EQ(*g.value(), "alice");
    auto sz = co_await m.size();
    CO_ASSERT_TRUE(sz.ok());
    EXPECT_EQ(sz.value(), 2u);
    co_await m.put_field("name", "bob");  // overwrite
    auto g2 = co_await m.get_field("name");
    EXPECT_EQ(*g2.value(), "bob");
    co_await m.erase_field("role");
    auto g3 = co_await m.get_field("role");
    CO_ASSERT_TRUE(g3.ok());
    EXPECT_FALSE(g3.value().has_value());
  });
  ASSERT_TRUE(ok);
}

TEST(AtomicMap, UpdateFieldIsAtomicRmw) {
  MusicWorld w;
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    sim::spawn(w.sim, [](MusicWorld& world, int ci, int& d) -> sim::Task<void> {
      AtomicMap m(world.client(static_cast<size_t>(ci)), "stats");
      for (int k = 0; k < 3; ++k) {
        auto inc = [](const std::optional<std::string>& old) {
          return std::to_string((old ? std::stoi(*old) : 0) + 1);
        };
        auto st = co_await m.update_field("hits", inc);
        EXPECT_TRUE(st.ok());
      }
      ++d;
    }(w, i, done));
  }
  w.sim.run_until(sim::sec(600));
  ASSERT_EQ(done, 2);
  AtomicMap m(w.client(2), "stats");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto g = co_await m.get_field("hits");
    CO_ASSERT_TRUE(g.ok());
    CO_ASSERT_TRUE(g.value().has_value());
    EXPECT_EQ(*g.value(), "6");
  });
  ASSERT_TRUE(ok);
}

TEST(DistributedQueue, FifoAcrossSites) {
  MusicWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    DistributedQueue q0(w.client(0), "q");
    DistributedQueue q1(w.client(1), "q");
    co_await q0.push("first");
    co_await q1.push("second");
    co_await q0.push("third");
    auto sz = co_await q1.size();
    CO_ASSERT_TRUE(sz.ok());
    EXPECT_EQ(sz.value(), 3u);
    auto a = co_await q1.pop();
    auto b = co_await q0.pop();
    auto cpop = co_await q1.pop();
    CO_ASSERT_TRUE(a.ok());
    CO_ASSERT_TRUE(b.ok());
    CO_ASSERT_TRUE(cpop.ok());
    EXPECT_EQ(a.value(), "first");
    EXPECT_EQ(b.value(), "second");
    EXPECT_EQ(cpop.value(), "third");
    auto empty = co_await q0.pop();
    EXPECT_EQ(empty.status(), OpStatus::NotFound);
  });
  ASSERT_TRUE(ok);
}

TEST(LeaderElection, SingleLeaderAtATime) {
  MusicWorld w;
  LeaderElection e0(w.client(0), "svc", "node0");
  LeaderElection e1(w.client(1), "svc", "node1");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await e0.campaign();
    CO_ASSERT_TRUE(st.ok());
    auto lead = co_await e0.am_leader();
    CO_ASSERT_TRUE(lead.ok());
    EXPECT_TRUE(lead.value());
    auto who = co_await e1.current_leader();
    CO_ASSERT_TRUE(who.ok());
    EXPECT_EQ(who.value(), "node0");
    // node0 resigns; node1 wins.
    co_await e0.resign();
    auto st1 = co_await e1.campaign();
    CO_ASSERT_TRUE(st1.ok());
    auto lead1 = co_await e1.am_leader();
    EXPECT_TRUE(lead1.ok() && lead1.value());
    auto lead0 = co_await e0.am_leader();
    EXPECT_TRUE(lead0.ok());
    EXPECT_FALSE(lead0.value());
    co_await e1.resign();
  });
  ASSERT_TRUE(ok);
}

TEST(LeaderElection, DeadLeaderIsSupersededViaFailureDetector) {
  WorldOptions opt;
  opt.music.t_max_cs = sim::sec(6);  // leadership "lease": the T bound
  opt.music.fd_interval = sim::sec(1);
  MusicWorld w(opt);
  w.replica(0).start_failure_detector();
  LeaderElection e0(w.client(0), "svc", "node0");
  LeaderElection e1(w.client(1), "svc", "node1");
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await e0.campaign();
    // node0 dies silently; node1 campaigns and must eventually win.
    auto st = co_await e1.campaign();
    CO_ASSERT_TRUE(st.ok());
    auto old_lead = co_await e0.am_leader();
    CO_ASSERT_TRUE(old_lead.ok());
    EXPECT_FALSE(old_lead.value());  // node0 was preempted
    co_await e1.resign();
  }, sim::sec(300));
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::recipes
