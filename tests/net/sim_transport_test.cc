// SimTransport seam tests: the in-memory backend honours the Transport
// contract — round trips on both seams, the sim loss model (unfulfilled
// futures, bounded by await_with_timeout), peer_up/reachable semantics, and
// deterministic schedules under a fixed seed.
#include "net/sim_transport.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "net/transport.h"
#include "sim/future.h"
#include "sim/network.h"
#include "sim/service.h"
#include "sim/simulation.h"
#include "util/world.h"
#include "wire/messages.h"

namespace music::net {
namespace {

/// A two-node fabric: client node at site 0, serving node at site 1 with an
/// echo endpoint on both seams.
struct Fabric {
  explicit Fabric(uint64_t seed = 1)
      : sim(seed),
        net(sim, sim::NetworkConfig{}),
        client(net.add_node(0)),
        server(net.add_node(1)),
        svc(sim, sim::ServiceConfig{}),
        transport(sim, net) {
    transport.bind(server,
                   SimEndpoint{&svc,
                               [](wire::Request req, RespondFn respond) {
                                 wire::Response resp(OpStatus::Ok);
                                 resp.value = req.value;  // echo
                                 respond(std::move(resp));
                               },
                               [](const wire::StoreRequest& msg) {
                                 wire::StoreReply r(true, msg.ballot);
                                 r.has_cell = true;
                                 r.cell = msg.cell;
                                 return r;
                               }});
  }

  sim::Simulation sim;
  sim::Network net;
  PeerId client;
  PeerId server;
  sim::ServiceNode svc;
  SimTransport transport;
};

TEST(SimTransport, InvokeRoundTrips) {
  Fabric f;
  test::TaskRunner runner(f.sim);
  bool ok = runner.run([&]() -> sim::Task<void> {
    wire::Request req(wire::Request::Op::CriticalGet, "k", 1, Value("ping"));
    auto resp = co_await sim::await_with_timeout(
        f.sim, f.transport.invoke(f.client, f.server, req, 96), sim::sec(5));
    CO_ASSERT_TRUE(resp.has_value());
    CO_ASSERT_EQ(resp->status, OpStatus::Ok);
    CO_ASSERT_EQ(resp->value.data, "ping");
  });
  EXPECT_TRUE(ok);
}

TEST(SimTransport, StoreCallRoundTripsAndSelfCallSkipsNetwork) {
  Fabric f;
  test::TaskRunner runner(f.sim);
  bool ok = runner.run([&]() -> sim::Task<void> {
    wire::StoreRequest msg =
        wire::StoreRequest::accept("k", wire::WireCell(Value("v"), 7), 3);
    // Remote call (client -> server crosses the site-0/site-1 link).
    auto r1 = co_await sim::await_with_timeout(
        f.sim,
        f.transport.store_call(f.client, f.server, msg, 64, 32, 16,
                               sim::MsgKind::PaxosAccept,
                               sim::MsgKind::StoreAck),
        sim::sec(5));
    CO_ASSERT_TRUE(r1.has_value());
    CO_ASSERT_TRUE(r1->ok);
    CO_ASSERT_EQ(r1->ballot, 3);
    CO_ASSERT_EQ(r1->cell.value.data, "v");
    uint64_t sent_before = f.net.messages_sent();
    // Self-call: pays the service cost but never touches the network.
    auto r2 = co_await sim::await_with_timeout(
        f.sim,
        f.transport.store_call(f.server, f.server, msg, 64, 32, 16,
                               sim::MsgKind::PaxosAccept,
                               sim::MsgKind::StoreAck),
        sim::sec(5));
    CO_ASSERT_TRUE(r2.has_value());
    CO_ASSERT_TRUE(r2->ok);
    CO_ASSERT_EQ(f.net.messages_sent(), sent_before);
  });
  EXPECT_TRUE(ok);
}

TEST(SimTransport, UnboundPeerIsLostNotAnError) {
  Fabric f;
  // A node the network knows but no endpoint serves: the request is
  // delivered to nobody, the future stays unfulfilled, and the bounded wait
  // reports nullopt — the §III timeout path, not a crash.
  PeerId ghost = f.net.add_node(2);
  EXPECT_FALSE(f.transport.peer_up(ghost));
  test::TaskRunner runner(f.sim);
  bool ok = runner.run([&]() -> sim::Task<void> {
    auto resp = co_await sim::await_with_timeout(
        f.sim, f.transport.invoke(f.client, ghost, wire::Request(), 96),
        sim::ms(500));
    CO_ASSERT_FALSE(resp.has_value());
  });
  EXPECT_TRUE(ok);
}

TEST(SimTransport, CrashedServiceDropsRequests) {
  Fabric f;
  f.svc.set_down(true);
  EXPECT_FALSE(f.transport.peer_up(f.server));
  test::TaskRunner runner(f.sim);
  bool ok = runner.run([&]() -> sim::Task<void> {
    auto resp = co_await sim::await_with_timeout(
        f.sim, f.transport.invoke(f.client, f.server, wire::Request(), 96),
        sim::ms(500));
    CO_ASSERT_FALSE(resp.has_value());
  });
  EXPECT_TRUE(ok);
  f.svc.set_down(false);
  EXPECT_TRUE(f.transport.peer_up(f.server));
}

TEST(SimTransport, PartitionSeversReachabilityAndDelivery) {
  Fabric f;
  EXPECT_TRUE(f.transport.reachable(f.client, f.server));
  auto pid = f.net.partition_sites(std::set<int>{0}, std::set<int>{1});
  EXPECT_FALSE(f.transport.reachable(f.client, f.server));
  test::TaskRunner runner(f.sim);
  bool ok = runner.run([&]() -> sim::Task<void> {
    auto resp = co_await sim::await_with_timeout(
        f.sim, f.transport.invoke(f.client, f.server, wire::Request(), 96),
        sim::ms(500));
    CO_ASSERT_FALSE(resp.has_value());
  });
  EXPECT_TRUE(ok);
  f.net.heal_partition(pid);
  EXPECT_TRUE(f.transport.reachable(f.client, f.server));
}

TEST(SimTransport, DeferredRespondCompletesLater) {
  Fabric f;
  // A server that parks the respond callback and fires it 50ms later —
  // the RespondFn contract allows completion from any later event.
  f.transport.bind(f.server,
                   SimEndpoint{&f.svc,
                               [&f](wire::Request, RespondFn respond) {
                                 f.sim.schedule(sim::ms(50),
                                                [respond = std::move(respond)] {
                                                  respond(wire::Response(
                                                      OpStatus::Conflict));
                                                });
                               },
                               nullptr});
  test::TaskRunner runner(f.sim);
  bool ok = runner.run([&]() -> sim::Task<void> {
    sim::Time t0 = f.sim.now();
    auto resp = co_await sim::await_with_timeout(
        f.sim, f.transport.invoke(f.client, f.server, wire::Request(), 96),
        sim::sec(5));
    CO_ASSERT_TRUE(resp.has_value());
    CO_ASSERT_EQ(resp->status, OpStatus::Conflict);
    CO_ASSERT_TRUE(f.sim.now() - t0 >= sim::ms(50));
  });
  EXPECT_TRUE(ok);
}

TEST(SimTransport, SeededRunsAreBitIdentical) {
  // The property the determinism goldens rely on, pinned at the seam
  // itself: identical seeds give identical completion timestamps.
  auto trace = [](uint64_t seed) {
    Fabric f(seed);
    std::vector<sim::Time> stamps;
    test::TaskRunner runner(f.sim);
    runner.run([&]() -> sim::Task<void> {
      for (int i = 0; i < 5; ++i) {
        wire::Request req(wire::Request::Op::CriticalPut, "k", 1,
                          Value(std::string(16 * (i + 1), 'x')));
        auto resp = co_await sim::await_with_timeout(
            f.sim, f.transport.invoke(f.client, f.server, req, 96),
            sim::sec(5));
        CO_ASSERT_TRUE(resp.has_value());
        stamps.push_back(f.sim.now());
      }
    });
    return stamps;
  };
  auto a = trace(42);
  auto b = trace(42);
  auto c = trace(43);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different jittered delays
}

}  // namespace
}  // namespace music::net
