// TcpTransport tests over real loopback sockets, in one process: a server
// transport and a client transport share the hybrid EventLoop and the test
// drives poll_once() until futures resolve.  Pins the deployment-path
// behaviours musicd relies on: framing round trips, req_id multiplexing,
// the sim loss model (unfulfilled futures), corrupt-frame connection
// hygiene, and reconnect after a peer comes (back) up.
#include "net/tcp.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <string>

#include "net/event_loop.h"
#include "sim/future.h"
#include "sim/simulation.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace music::net {
namespace {

/// Pumps the loop (wall-clock bounded) until `f` resolves; nullopt on
/// timeout — the bounded-wait discipline protocol code uses, inlined.
template <typename T>
std::optional<T> drive(EventLoop& loop, sim::Future<T> f, int limit_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(limit_ms);
  while (!f.ready() && std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(5);
  }
  if (!f.ready()) return std::nullopt;
  return f.value();
}

/// Pumps the loop for a fixed wall-clock interval.
void pump_for(EventLoop& loop, int ms) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) loop.poll_once(5);
}

/// Pumps until the outbound connection to `id` is established.  Sends
/// issued before that are dropped, sim-style — real callers ride their
/// retry discipline over this window; single-shot tests must wait it out.
bool wait_peer_up(EventLoop& loop, TcpTransport& t, PeerId id, int limit_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(limit_ms);
  while (!t.peer_up(id) && std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(5);
  }
  return t.peer_up(id);
}

ServeRequestFn echo_server() {
  return [](wire::Request req, RespondFn respond) {
    wire::Response resp(OpStatus::Ok);
    resp.value = req.value;
    respond(std::move(resp));
  };
}

ServeStoreFn store_server() {
  return [](const wire::StoreRequest& msg) {
    wire::StoreReply r(true, msg.ballot);
    r.has_cell = true;
    r.cell = msg.cell;
    return r;
  };
}

/// Grabs a loopback port that is currently free (bind ephemeral, read it
/// back, close).  Small race window, fine for tests.
uint16_t free_port() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t len = sizeof(addr);
  bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  close(fd);
  return ntohs(addr.sin_port);
}

TEST(TcpTransport, InvokeRoundTripsOverRealSockets) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport server(loop);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));

  wire::Request req(wire::Request::Op::CriticalGet, "k", 7, Value("ping"));
  auto resp = drive(loop, client.invoke(100, 1, req, 96), 3000);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, OpStatus::Ok);
  EXPECT_EQ(resp->value.data, "ping");
  EXPECT_TRUE(client.peer_up(1));
  EXPECT_EQ(client.connected_peers(), 1);
}

TEST(TcpTransport, StoreCallRoundTripsOverRealSockets) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport server(loop);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(2, 0, nullptr, store_server());
  ASSERT_NE(port, 0);
  client.route(2, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 2, 3000));

  wire::StoreRequest msg =
      wire::StoreRequest::accept("k", wire::WireCell(Value("v"), 11), 5);
  auto reply = drive(loop,
                     client.store_call(0, 2, msg, 64, 32, 16,
                                       sim::MsgKind::PaxosAccept,
                                       sim::MsgKind::StoreAck),
                     3000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->ballot, 5);
  EXPECT_EQ(reply->cell.value.data, "v");
  EXPECT_EQ(reply->cell.ts, 11);
}

TEST(TcpTransport, ConcurrentInvokesMultiplexOneConnection) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport server(loop);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));

  // Issue several requests before pumping again: they queue on one
  // connection and resolve by req_id, not arrival order assumptions.
  std::vector<sim::Future<wire::Response>> futs;
  for (int i = 0; i < 8; ++i) {
    wire::Request req(wire::Request::Op::CriticalGet, "k", 1,
                      Value("m" + std::to_string(i)));
    futs.push_back(client.invoke(100, 1, req, 96));
  }
  for (int i = 0; i < 8; ++i) {
    auto resp = drive(loop, futs[static_cast<size_t>(i)], 3000);
    ASSERT_TRUE(resp.has_value()) << i;
    EXPECT_EQ(resp->value.data, "m" + std::to_string(i));
  }
  EXPECT_EQ(client.connected_peers(), 1);
}

TEST(TcpTransport, LocalEndpointShortCircuits) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport t(loop);
  t.bind_local(9, echo_server(), store_server());
  EXPECT_TRUE(t.peer_up(9));

  auto resp = drive(loop, t.invoke(100, 9, wire::Request(), 96), 1000);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, OpStatus::Ok);
  EXPECT_EQ(t.connected_peers(), 0);  // no socket involved
}

TEST(TcpTransport, UnroutedPeerLeavesFutureUnfulfilled) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport t(loop);
  EXPECT_FALSE(t.peer_up(5));
  EXPECT_FALSE(t.reachable(0, 5));
  auto resp = drive(loop, t.invoke(100, 5, wire::Request(), 96), 200);
  EXPECT_FALSE(resp.has_value());  // lost, not errored — caller's timeout
}

TEST(TcpTransport, CorruptFrameKillsConnectionNotServer) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport server(loop);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);

  // A raw attacker connection feeding a frame with a hostile length prefix.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // The loop owns accept(); pump until connect lands.
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  pump_for(loop, 50);
  char bad[16];
  std::memset(bad, 0, sizeof(bad));
  uint32_t evil_len = wire::kMaxFrameBytes + 1;
  std::memcpy(bad, &evil_len, sizeof(evil_len));
  ASSERT_EQ(write(fd, bad, sizeof(bad)), static_cast<ssize_t>(sizeof(bad)));
  pump_for(loop, 100);

  // The server must have dropped only that connection: EOF here...
  timeval tv{1, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char c;
  EXPECT_EQ(recv(fd, &c, 1, 0), 0);
  close(fd);

  // ...while a well-behaved client still gets served.
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));
  auto resp = drive(loop, client.invoke(100, 1, wire::Request(), 96), 3000);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, OpStatus::Ok);
}

TEST(TcpTransport, ReconnectsAfterPeerComesUp) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport client(loop);

  uint16_t port = free_port();
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);  // nothing listening yet
  pump_for(loop, 50);
  EXPECT_FALSE(client.peer_up(1));
  auto lost = drive(loop, client.invoke(100, 1, wire::Request(), 96), 100);
  EXPECT_FALSE(lost.has_value());  // down-route sends are lost, sim-style

  // Peer appears; the client's reconnect backoff (200ms) must find it
  // without any new route() call.
  TcpTransport server(loop);
  ASSERT_EQ(server.listen_for(1, port, echo_server(), nullptr), port);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!client.peer_up(1) && std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(5);
  }
  ASSERT_TRUE(client.peer_up(1));
  auto resp = drive(loop, client.invoke(100, 1, wire::Request(), 96), 3000);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, OpStatus::Ok);
}

}  // namespace
}  // namespace music::net
