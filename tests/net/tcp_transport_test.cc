// TcpTransport tests over real loopback sockets, in one process: a server
// transport and a client transport share the hybrid EventLoop and the test
// drives poll_once() until futures resolve.  Pins the deployment-path
// behaviours musicd relies on: framing round trips, req_id multiplexing,
// the sim loss model (unfulfilled futures), corrupt-frame connection
// hygiene, and reconnect after a peer comes (back) up.
#include "net/tcp.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <string>

#include "net/event_loop.h"
#include "sim/future.h"
#include "sim/simulation.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace music::net {
namespace {

/// Pumps the loop (wall-clock bounded) until `f` resolves; nullopt on
/// timeout — the bounded-wait discipline protocol code uses, inlined.
template <typename T>
std::optional<T> drive(EventLoop& loop, sim::Future<T> f, int limit_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(limit_ms);
  while (!f.ready() && std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(5);
  }
  if (!f.ready()) return std::nullopt;
  return f.value();
}

/// Pumps the loop for a fixed wall-clock interval.
void pump_for(EventLoop& loop, int ms) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) loop.poll_once(5);
}

/// Pumps until the outbound connection to `id` is established.  Sends
/// issued before that are dropped, sim-style — real callers ride their
/// retry discipline over this window; single-shot tests must wait it out.
bool wait_peer_up(EventLoop& loop, TcpTransport& t, PeerId id, int limit_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(limit_ms);
  while (!t.peer_up(id) && std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(5);
  }
  return t.peer_up(id);
}

ServeRequestFn echo_server() {
  return [](wire::Request req, RespondFn respond) {
    wire::Response resp(OpStatus::Ok);
    resp.value = req.value;
    respond(std::move(resp));
  };
}

ServeStoreFn store_server() {
  return [](const wire::StoreRequest& msg) {
    wire::StoreReply r(true, msg.ballot);
    r.has_cell = true;
    r.cell = msg.cell;
    return r;
  };
}

/// Grabs a loopback port that is currently free (bind ephemeral, read it
/// back, close).  Small race window, fine for tests.
uint16_t free_port() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t len = sizeof(addr);
  bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  close(fd);
  return ntohs(addr.sin_port);
}

TEST(TcpTransport, InvokeRoundTripsOverRealSockets) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport server(loop);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));

  wire::Request req(wire::Request::Op::CriticalGet, "k", 7, Value("ping"));
  auto resp = drive(loop, client.invoke(100, 1, req, 96), 3000);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, OpStatus::Ok);
  EXPECT_EQ(resp->value.data, "ping");
  EXPECT_TRUE(client.peer_up(1));
  EXPECT_EQ(client.connected_peers(), 1);
}

TEST(TcpTransport, StoreCallRoundTripsOverRealSockets) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport server(loop);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(2, 0, nullptr, store_server());
  ASSERT_NE(port, 0);
  client.route(2, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 2, 3000));

  wire::StoreRequest msg =
      wire::StoreRequest::accept("k", wire::WireCell(Value("v"), 11), 5);
  auto reply = drive(loop,
                     client.store_call(0, 2, msg, 64, 32, 16,
                                       sim::MsgKind::PaxosAccept,
                                       sim::MsgKind::StoreAck),
                     3000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->ballot, 5);
  EXPECT_EQ(reply->cell.value.data, "v");
  EXPECT_EQ(reply->cell.ts, 11);
}

TEST(TcpTransport, ConcurrentInvokesMultiplexOneConnection) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport server(loop);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));

  // Issue several requests before pumping again: they queue on one
  // connection and resolve by req_id, not arrival order assumptions.
  std::vector<sim::Future<wire::Response>> futs;
  for (int i = 0; i < 8; ++i) {
    wire::Request req(wire::Request::Op::CriticalGet, "k", 1,
                      Value("m" + std::to_string(i)));
    futs.push_back(client.invoke(100, 1, req, 96));
  }
  for (int i = 0; i < 8; ++i) {
    auto resp = drive(loop, futs[static_cast<size_t>(i)], 3000);
    ASSERT_TRUE(resp.has_value()) << i;
    EXPECT_EQ(resp->value.data, "m" + std::to_string(i));
  }
  EXPECT_EQ(client.connected_peers(), 1);
}

TEST(TcpTransport, LocalEndpointShortCircuits) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport t(loop);
  t.bind_local(9, echo_server(), store_server());
  EXPECT_TRUE(t.peer_up(9));

  auto resp = drive(loop, t.invoke(100, 9, wire::Request(), 96), 1000);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, OpStatus::Ok);
  EXPECT_EQ(t.connected_peers(), 0);  // no socket involved
}

TEST(TcpTransport, UnroutedPeerLeavesFutureUnfulfilled) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport t(loop);
  EXPECT_FALSE(t.peer_up(5));
  EXPECT_FALSE(t.reachable(0, 5));
  auto resp = drive(loop, t.invoke(100, 5, wire::Request(), 96), 200);
  EXPECT_FALSE(resp.has_value());  // lost, not errored — caller's timeout
}

TEST(TcpTransport, CorruptFrameKillsConnectionNotServer) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport server(loop);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);

  // A raw attacker connection feeding a frame with a hostile length prefix.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // The loop owns accept(); pump until connect lands.
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  pump_for(loop, 50);
  char bad[16];
  std::memset(bad, 0, sizeof(bad));
  uint32_t evil_len = wire::kMaxFrameBytes + 1;
  std::memcpy(bad, &evil_len, sizeof(evil_len));
  ASSERT_EQ(write(fd, bad, sizeof(bad)), static_cast<ssize_t>(sizeof(bad)));
  pump_for(loop, 100);

  // The server must have dropped only that connection: after draining its
  // Hello advertisement, EOF here...
  timeval tv{1, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char drainbuf[256];
  ssize_t n;
  while ((n = recv(fd, drainbuf, sizeof(drainbuf), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);
  close(fd);

  // ...while a well-behaved client still gets served.
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));
  auto resp = drive(loop, client.invoke(100, 1, wire::Request(), 96), 3000);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, OpStatus::Ok);
}

TEST(TcpTransport, ReconnectsAfterPeerComesUp) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport client(loop);

  uint16_t port = free_port();
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);  // nothing listening yet
  pump_for(loop, 50);
  EXPECT_FALSE(client.peer_up(1));
  auto lost = drive(loop, client.invoke(100, 1, wire::Request(), 96), 100);
  EXPECT_FALSE(lost.has_value());  // down-route sends are lost, sim-style

  // Peer appears; the client's reconnect backoff (200ms) must find it
  // without any new route() call.
  TcpTransport server(loop);
  ASSERT_EQ(server.listen_for(1, port, echo_server(), nullptr), port);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!client.peer_up(1) && std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(5);
  }
  ASSERT_TRUE(client.peer_up(1));
  auto resp = drive(loop, client.invoke(100, 1, wire::Request(), 96), 3000);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, OpStatus::Ok);

  // Per-route diagnostics: the route came up once (no reconnects yet
  // counted — the first establishment is not a reconnect) at the highest
  // common version.
  auto info = client.peer_info();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_EQ(info[0].id, 1);
  EXPECT_TRUE(info[0].connected);
  EXPECT_EQ(info[0].wire_version, wire::kWireVersionMax);
}

// ---- Version handshake -----------------------------------------------------

TEST(TcpTransport, HandshakePinsHighestCommonVersion) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpTransport server(loop);  // speaks [1, kWireVersionMax]
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));

  auto info = client.peer_info();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_EQ(info[0].wire_version, wire::kWireVersionMax);
  EXPECT_EQ(info[0].handshake_failures, 0u);
}

TEST(TcpTransport, MixedVersionPeerSpeaksV1) {
  // A "v1 binary" server (mixed-version fleet mid-upgrade): the connection
  // pins v1, and the v2 client serves traffic over it regardless.
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpOptions v1_only;
  v1_only.wire_version_max = 1;
  TcpTransport server(loop, v1_only);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));

  auto info = client.peer_info();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_EQ(info[0].wire_version, 1);

  wire::Request req(wire::Request::Op::CriticalGet, "k", 7, Value("ping"));
  auto resp = drive(loop, client.invoke(100, 1, req, 96), 3000);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, OpStatus::Ok);
  EXPECT_EQ(resp->value.data, "ping");
}

TEST(TcpTransport, IncompatibleVersionRangesNeverEstablish) {
  // An all-future peer ([5,9]): Hellos exchange, negotiation fails on both
  // sides, the connection dies — and ONLY the connection; the processes
  // stay healthy and the client keeps retrying with backoff.
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpOptions future;
  future.wire_version_min = 5;
  future.wire_version_max = 9;
  TcpTransport server(loop, future);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);
  EXPECT_FALSE(wait_peer_up(loop, client, 1, 400));

  auto info = client.peer_info();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_FALSE(info[0].connected);
  EXPECT_EQ(info[0].wire_version, 0);
  EXPECT_GE(info[0].handshake_failures, 1u);

  auto lost = drive(loop, client.invoke(100, 1, wire::Request(), 96), 100);
  EXPECT_FALSE(lost.has_value());  // un-established route: sim-style loss
}

TEST(TcpTransport, GarbageBeforeHelloKillsConnection) {
  // A peer that speaks frames before its Hello violates the handshake: the
  // serving side must refuse to dispatch anything pre-negotiation.
  sim::Simulation sim(1);
  EventLoop loop(sim);
  int served = 0;
  TcpTransport server(loop);
  uint16_t port = server.listen_for(
      1, 0,
      [&served](wire::Request req, RespondFn respond) {
        ++served;
        respond(wire::Response(OpStatus::Ok));
        (void)req;
      },
      nullptr);
  ASSERT_NE(port, 0);

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // A perfectly well-formed request frame — but no Hello first.
  std::string frame = wire::encode_request(1, wire::Request());
  ASSERT_EQ(write(fd, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  pump_for(loop, 100);
  timeval tv{1, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char drainbuf[256];
  ssize_t n;
  while ((n = recv(fd, drainbuf, sizeof(drainbuf), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);  // connection killed
  EXPECT_EQ(served, 0);  // and the request was never dispatched
  close(fd);
}

// ---- Churn hardening -------------------------------------------------------

TEST(TcpTransport, InflightRequestsFailRetryableWhenConnectionDrops) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  // A server that accepts requests and never answers them (holds the
  // RespondFns), then dies with requests in flight.
  std::vector<RespondFn> held;
  auto server = std::make_unique<TcpTransport>(loop);
  uint16_t port = server->listen_for(
      1, 0,
      [&held](wire::Request, RespondFn respond) {
        held.push_back(std::move(respond));
      },
      [](const wire::StoreRequest&) { return wire::StoreReply(true, -1); });
  ASSERT_NE(port, 0);

  TcpTransport client(loop);
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));

  auto f_invoke = client.invoke(100, 1, wire::Request(), 96);
  wire::StoreRequest msg = wire::StoreRequest::read("k");
  auto f_store = client.store_call(0, 1, msg, 64, 32, 16,
                                   sim::MsgKind::StoreRead,
                                   sim::MsgKind::StoreAck);
  // Both requests reach the server's hold queue...
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (held.empty() && std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(5);
  }
  ASSERT_FALSE(held.empty());

  // ...then the server process dies.  The in-flight requests must surface
  // as retryable results FAST (transport-synthesized), not hang until some
  // distant caller timeout.
  held.clear();
  server.reset();
  auto invoke_result = drive(loop, f_invoke, 2000);
  ASSERT_TRUE(invoke_result.has_value()) << "in-flight invoke silently lost";
  EXPECT_EQ(invoke_result->status, OpStatus::Timeout);
  EXPECT_TRUE(is_retryable(invoke_result->status));
  auto store_result = drive(loop, f_store, 2000);
  ASSERT_TRUE(store_result.has_value()) << "in-flight store call silently lost";
  EXPECT_FALSE(store_result->ok);  // a nack: never counted as success
  EXPECT_EQ(store_result->ballot, -1);
}

TEST(TcpTransport, GoodbyeDrainFailsInflightAndReconnects) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  std::vector<RespondFn> held;
  TcpTransport server(loop);
  uint16_t port = server.listen_for(
      1, 0,
      [&held](wire::Request, RespondFn respond) {
        held.push_back(std::move(respond));
      },
      nullptr);
  ASSERT_NE(port, 0);

  TcpTransport client(loop);
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));

  auto f = client.invoke(100, 1, wire::Request(), 96);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (held.empty() && std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(5);
  }
  ASSERT_FALSE(held.empty());

  // The server announces a drain (v2 Goodbye).  The client must fail the
  // in-flight request retryable immediately — before any FIN arrives.
  server.announce_drain(wire::GoodbyeReason::Restart);
  auto result = drive(loop, f, 2000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, OpStatus::Timeout);

  // The server in this test never actually exits, so the client's backoff
  // loop re-establishes — and the churn shows up in the route diagnostics.
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 5000));
  auto info = client.peer_info();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_GE(info[0].reconnects, 1u);
  EXPECT_EQ(info[0].wire_version, wire::kWireVersionMax);
}

TEST(TcpTransport, OversizedFrameLimitIsConfigurable) {
  sim::Simulation sim(1);
  EventLoop loop(sim);
  TcpOptions tight;
  tight.max_frame_bytes = 256;  // tiny per-connection ceiling
  TcpTransport server(loop, tight);
  TcpTransport client(loop);

  uint16_t port = server.listen_for(1, 0, echo_server(), nullptr);
  ASSERT_NE(port, 0);
  client.route(1, "127.0.0.1", port);
  ASSERT_TRUE(wait_peer_up(loop, client, 1, 3000));

  // A small request round-trips under the ceiling...
  wire::Request small(wire::Request::Op::CriticalGet, "k", 1, Value("v"));
  auto ok = drive(loop, client.invoke(100, 1, small, 96), 3000);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, OpStatus::Ok);

  // ...an oversized one trips TooLarge on the server, which kills the
  // connection; the client sees its in-flight request fail retryable.
  wire::Request fat(wire::Request::Op::CriticalPut, "k", 1,
                    Value(std::string(1024, 'x'), 1024));
  auto dropped = drive(loop, client.invoke(100, 1, fat, 96), 3000);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->status, OpStatus::Timeout);
}

}  // namespace
}  // namespace music::net
