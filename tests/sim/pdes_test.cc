// The conservative PDES engine: windowed execution over per-site event
// lanes, cross-lane mail, and — the property the whole design exists for —
// bit-identical results at ANY worker count.
//
// Three layers of coverage:
//  - engine unit tests on a bare Simulation (window math, cross-lane mail
//    ordering, main-lane solo execution, schedule_main_at hops);
//  - a synthetic worker-count-invariance fingerprint (per-lane rng draws
//    and randomized cross-lane sends);
//  - determinism goldens: the full MUSIC deployment from
//    sim/determinism_golden_test.cc on the lUsEu WAN profile, fingerprints
//    pinned and asserted identical at 1/2/4/8 shard workers.  PDES worlds
//    draw per-lane rng streams, so these constants deliberately differ from
//    the classic-kernel goldens.
//
// Regenerate after a deliberate semantic change with:
//   MUSIC_REGEN_GOLDENS=1 ./sim_pdes_test
// and paste the printed table over kPdesGoldens below.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/client.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "util/world.h"
#include "verify/oracle.h"

namespace music {
namespace {

/// FNV-1a 64-bit; the fingerprint accumulator.
struct Fnv {
  uint64_t h = 0xcbf29ce484222325ull;
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  void mix(const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    mix(s.size());
  }
};

sim::Simulation::PdesOptions pdes(int sites, size_t workers,
                                  sim::Duration lookahead) {
  sim::Simulation::PdesOptions po;
  po.sites = sites;
  po.workers = workers;
  po.lookahead = lookahead;
  return po;
}

TEST(PdesEngine, AccessorsReflectConfiguration) {
  sim::Simulation sim(1);
  EXPECT_FALSE(sim.pdes());
  EXPECT_TRUE(sim.on_main_lane());
  sim.enable_pdes(pdes(3, 2, sim::us(50)));
  EXPECT_TRUE(sim.pdes());
  EXPECT_EQ(sim.pdes_sites(), 3);
  EXPECT_EQ(sim.pdes_workers(), 2u);
  EXPECT_EQ(sim.pdes_lookahead(), sim::us(50));
  EXPECT_EQ(sim.pdes_windows_run(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(PdesEngine, CrossLaneMailDeliversInTimestampOrder) {
  sim::Simulation sim(7);
  constexpr sim::Duration kLook = sim::us(50);
  sim.enable_pdes(pdes(2, 2, kLook));

  // A strict ping-pong: site 0 and site 1 alternate, every hop exactly one
  // lookahead apart, each lane appending only to its own log (no shared
  // mutable state between lanes).
  std::array<std::vector<sim::Time>, 2> log;
  int remaining = 16;
  std::function<void(int)> arrive = [&](int site) {
    log[static_cast<size_t>(site)].push_back(sim.now());
    if (--remaining > 0) {
      int to = 1 - site;
      sim.schedule_site_at(to, sim.now() + kLook,
                           [&arrive, to] { arrive(to); });
    }
  };
  sim.schedule_site_at(0, kLook, [&arrive] { arrive(0); });
  sim.run_until_idle();

  ASSERT_EQ(log[0].size(), 8u);
  ASSERT_EQ(log[1].size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    // Hop k lands at (k+1)*kLook; even hops at site 0, odd at site 1.
    EXPECT_EQ(log[0][i], static_cast<sim::Time>(2 * i + 1) * kLook);
    EXPECT_EQ(log[1][i], static_cast<sim::Time>(2 * i + 2) * kLook);
  }
  EXPECT_EQ(sim.events_run(), 16u);
  EXPECT_GE(sim.pdes_windows_run(), 1u);
}

TEST(PdesEngine, MainLaneEventsRunAloneBetweenWindows) {
  sim::Simulation sim(3);
  sim.enable_pdes(pdes(4, 4, sim::us(100)));

  // `flag` is a PLAIN int: safe only because the main-lane event that
  // writes it runs with no site lane in flight (TSan enforces the claim).
  // Site events straddle the write; each must observe 0 strictly before it
  // and 1 strictly after.
  int flag = 0;
  constexpr sim::Time kFlip = 505;
  std::array<std::vector<std::pair<sim::Time, int>>, 4> seen;
  for (int s = 0; s < 4; ++s) {
    for (sim::Time t = 3; t < 1000; t += 30) {
      sim.schedule_site_at(s, t, [&seen, &flag, s, &sim] {
        seen[static_cast<size_t>(s)].emplace_back(sim.now(), flag);
      });
    }
  }
  sim.schedule_at(kFlip, [&flag] { flag = 1; });  // main lane (setup context)
  sim.run_until_idle();

  for (const auto& lane : seen) {
    ASSERT_FALSE(lane.empty());
    for (const auto& [t, v] : lane) EXPECT_EQ(v, t < kFlip ? 0 : 1) << t;
  }
}

TEST(PdesEngine, ScheduleMainAtHopsMutationsOffSiteLanes) {
  sim::Simulation sim(5);
  sim.enable_pdes(pdes(2, 2, sim::us(40)));

  // A site-lane event requests a main-lane mutation mid-window; the hop
  // must land on the main lane (alone), at or after the requesting window's
  // end, and before any site event of a later window reads the value.
  int shared = 0;
  bool hopped_on_main = false;
  sim::Time hop_at = 0;
  sim.schedule_site_at(0, sim::us(10), [&] {
    EXPECT_FALSE(sim.on_main_lane());
    sim.schedule_main_at(sim.now(), [&] {
      hopped_on_main = sim.on_main_lane();
      hop_at = sim.now();
      shared = 42;
    });
  });
  int observed = -1;
  sim.schedule_site_at(1, sim::us(500), [&] { observed = shared; });
  sim.run_until_idle();

  EXPECT_TRUE(hopped_on_main);
  EXPECT_GE(hop_at, sim::us(10));  // clamped into the barrier, never early
  EXPECT_LE(hop_at, sim::us(500));
  EXPECT_EQ(observed, 42);
  EXPECT_EQ(shared, 42);
}

TEST(PdesEngine, RunUntilAdvancesEveryLaneToTarget) {
  sim::Simulation sim(1);
  sim.enable_pdes(pdes(3, 1, sim::us(50)));
  sim.schedule_site_at(2, sim::ms(2), [] {});
  sim.run_until(sim::ms(10));
  EXPECT_EQ(sim.now(), sim::ms(10));
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_run(), 1u);
}

/// Synthetic worker-invariance scenario: every lane runs a randomized
/// self-rescheduling chain (drawing from its own lane rng) that sometimes
/// mails the next lane one-lookahead-plus-jitter ahead.  The fingerprint
/// folds each lane's observation log in lane order.
uint64_t synthetic_fingerprint(size_t workers) {
  sim::Simulation sim(42);
  constexpr sim::Duration kLook = sim::us(50);
  sim.enable_pdes(pdes(4, workers, kLook));

  std::array<Fnv, 4> logs;
  std::array<int, 4> budget{160, 160, 160, 160};
  std::function<void(int)> tick = [&](int s) {
    auto si = static_cast<size_t>(s);
    uint64_t r = sim.rng().next_u64();  // this lane's private stream
    logs[si].mix(static_cast<uint64_t>(sim.now()));
    logs[si].mix(r);
    if (--budget[si] <= 0) return;
    sim::Duration jitter = static_cast<sim::Duration>(r % 40) + 1;
    if (r % 3 == 0) {
      int to = (s + 1) % 4;
      sim.schedule_site_at(to, sim.now() + kLook + jitter,
                           [&tick, to] { tick(to); });
    } else {
      sim.schedule(jitter, [&tick, s] { tick(s); });
    }
  };
  for (int s = 0; s < 4; ++s) {
    sim.schedule_site_at(s, sim::us(1 + s), [&tick, s] { tick(s); });
  }
  sim.run_until_idle();

  Fnv fp;
  for (const Fnv& l : logs) fp.mix(l.h);
  fp.mix(sim.events_run());
  fp.mix(static_cast<uint64_t>(sim.now()));
  return fp.h;
}

TEST(PdesEngine, SyntheticFingerprintIsWorkerCountInvariant) {
  uint64_t one = synthetic_fingerprint(1);
  EXPECT_EQ(one, synthetic_fingerprint(2));
  EXPECT_EQ(one, synthetic_fingerprint(4));
}

// ---- Determinism goldens: the full MUSIC stack under PDES. -----------------

/// One checked client's life (same shape as determinism_golden_test.cc) —
/// but logging into its OWN Fnv: under PDES clients at different sites run
/// on different lanes, so a shared log would race and fold in scheduling
/// order.  Per-client logs folded in cid order are worker-count invariant.
sim::Task<void> client_loop(test::MusicWorld& w, verify::EcfChecker& checker,
                            int cid, Fnv& log) {
  verify::CheckedClient c(w.client(static_cast<size_t>(cid)), checker);
  Key key = "g";
  key += std::to_string(cid % 3);  // 2 clients contend per key
  for (int round = 0; round < 4; ++round) {
    auto ref = co_await c.create_lock_ref(key);
    log.mix(static_cast<uint64_t>(w.sim.now()));
    if (!ref.ok()) continue;
    log.mix(static_cast<uint64_t>(ref.value()));
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    log.mix(static_cast<uint64_t>(acq.status()));
    if (!acq.ok()) continue;
    for (int i = 0; i < 2; ++i) {
      std::string payload = "c";
      payload += std::to_string(cid);
      payload += "r";
      payload += std::to_string(round);
      payload += "i";
      payload += std::to_string(i);
      Value v(std::move(payload));
      auto st = co_await c.critical_put(key, ref.value(), v);
      log.mix(static_cast<uint64_t>(st.status()));
    }
    auto got = co_await c.critical_get(key, ref.value());
    log.mix(static_cast<uint64_t>(got.status()));
    if (got.ok()) log.mix(got.value().data);
    auto rel = co_await c.release_lock(key, ref.value());
    log.mix(static_cast<uint64_t>(rel.status()));
    log.mix(static_cast<uint64_t>(w.sim.now()));
  }
}

struct RunOutcome {
  uint64_t events_run;
  uint64_t fingerprint;
};

RunOutcome run_pdes_scenario(uint64_t seed, size_t workers) {
  test::WorldOptions opt;
  opt.seed = seed;
  opt.profile = sim::LatencyProfile::profile_luseu();
  opt.clients_per_site = 2;
  opt.pdes_workers = workers;
  test::MusicWorld w(opt);
  EXPECT_TRUE(w.sim.pdes());
  verify::EcfChecker checker(w.sim);
  std::vector<Fnv> logs(6);
  for (int cid = 0; cid < 6; ++cid) {
    sim::spawn(w.sim, client_loop(w, checker, cid, logs[static_cast<size_t>(cid)]));
  }
  w.sim.run_until(sim::sec(600));

  EXPECT_TRUE(checker.ok()) << checker.report();
  Fnv fp;
  for (const Fnv& log : logs) fp.mix(log.h);
  fp.mix(w.sim.events_run());
  fp.mix(static_cast<uint64_t>(w.sim.now()));
  fp.mix(w.net.messages_sent());
  fp.mix(w.net.messages_dropped());
  fp.mix(w.net.bytes_sent());
  fp.mix(w.net.wan_messages_sent());
  for (size_t k = 0; k < static_cast<size_t>(sim::MsgKind::kCount); ++k) {
    fp.mix(w.net.messages_sent(static_cast<sim::MsgKind>(k)));
  }
  fp.mix(checker.violations().size());
  for (int key = 0; key < 3; ++key) {
    std::string name = "g";
    name += std::to_string(key);
    auto truth = checker.stable_truth(name, sim::sec(1));
    fp.mix(truth.has_value() ? truth->data : std::string("<none>"));
  }
  return {w.sim.events_run(), fp.h};
}

struct Golden {
  uint64_t seed;
  uint64_t events_run;
  uint64_t fingerprint;
};

// Captured at 1 worker on the lUsEu profile; every other worker count must
// reproduce each row bit-identically.  These differ from the classic-kernel
// goldens by design (per-lane rng streams).
constexpr Golden kPdesGoldens[] = {
    {1, 11001, 0x8b990fbf48681c27ull},
    {2, 10078, 0x6dc236746cb07eb8ull},
};

constexpr size_t kWorkerConfigs[] = {1, 2, 4, 8};

TEST(PdesGolden, WorkerCountsReproducePinnedFingerprints) {
  bool regen = std::getenv("MUSIC_REGEN_GOLDENS") != nullptr;
  for (const Golden& g : kPdesGoldens) {
    RunOutcome base{0, 0};
    for (size_t wi = 0; wi < std::size(kWorkerConfigs); ++wi) {
      RunOutcome out = run_pdes_scenario(g.seed, kWorkerConfigs[wi]);
      if (wi == 0) {
        base = out;
        if (regen) {
          std::printf("    {%llu, %llu, 0x%016llxull},\n",
                      static_cast<unsigned long long>(g.seed),
                      static_cast<unsigned long long>(out.events_run),
                      static_cast<unsigned long long>(out.fingerprint));
        } else {
          EXPECT_EQ(out.events_run, g.events_run) << "seed " << g.seed;
          EXPECT_EQ(out.fingerprint, g.fingerprint) << "seed " << g.seed;
        }
        continue;
      }
      // The tentpole property: shard workers change wall-clock, never bits.
      EXPECT_EQ(out.events_run, base.events_run)
          << "seed " << g.seed << " workers " << kWorkerConfigs[wi];
      EXPECT_EQ(out.fingerprint, base.fingerprint)
          << "seed " << g.seed << " workers " << kWorkerConfigs[wi];
    }
  }
}

}  // namespace
}  // namespace music
