// Unit tests for InlineFnT: inline vs pooled storage selection, move-only
// ownership, capture lifecycle, and pool block recycling.
#include "sim/inline_fn.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>

namespace music::sim {
namespace {

TEST(InlineFn, DefaultIsEmpty) {
  InlineFn f;
  EXPECT_FALSE(f);
  InlineFn g(nullptr);
  EXPECT_FALSE(g);
}

TEST(InlineFn, InvokesSmallCapture) {
  int x = 0;
  InlineFn f = [&x] { x = 42; };
  ASSERT_TRUE(f);
  f();
  EXPECT_EQ(x, 42);
}

TEST(InlineFn, ReturnsValuesAndTakesArguments) {
  InlineFnT<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
  int calls = 0;
  InlineFnT<void(const int&)> g = [&calls](const int& v) { calls += v; };
  g(7);
  EXPECT_EQ(calls, 7);
}

TEST(InlineFn, SmallCapturesStayOffThePool) {
  auto& pool = detail::CallablePool::instance();
  uint64_t fresh0 = pool.fresh_allocs();
  uint64_t reused0 = pool.reused_allocs();
  // 48 bytes of capture: comfortably inside the 64-byte inline buffer.
  struct {
    uint64_t a[6] = {1, 2, 3, 4, 5, 6};
  } cap;
  uint64_t sum = 0;
  InlineFn f = [cap, &sum] {
    for (uint64_t v : cap.a) sum += v;
  };
  f();
  EXPECT_EQ(sum, 21u);
  EXPECT_EQ(pool.fresh_allocs(), fresh0);
  EXPECT_EQ(pool.reused_allocs(), reused0);
}

TEST(InlineFn, LargeCapturesGoToPoolAndBlocksAreRecycled) {
  auto& pool = detail::CallablePool::instance();
  struct Big {
    unsigned char bytes[200];
  };
  Big big{};
  big.bytes[0] = 7;
  big.bytes[199] = 9;

  uint64_t fresh0 = pool.fresh_allocs();
  int sum = 0;
  {
    InlineFn f = [big, &sum] { sum = big.bytes[0] + big.bytes[199]; };
    f();
  }
  EXPECT_EQ(sum, 16);
  uint64_t fresh_after_first = pool.fresh_allocs();
  EXPECT_GE(fresh_after_first, fresh0 + 1);  // overflowed to the pool

  // The block was freed on destruction; the same size class must now be
  // served from the freelist with no fresh allocation.
  uint64_t reused0 = pool.reused_allocs();
  {
    InlineFn g = [big, &sum] { sum = 1; };
    g();
  }
  EXPECT_EQ(pool.fresh_allocs(), fresh_after_first);
  EXPECT_GE(pool.reused_allocs(), reused0 + 1);
}

TEST(InlineFn, HoldsMoveOnlyCallables) {
  auto p = std::make_unique<int>(5);
  InlineFnT<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 5);
  InlineFnT<int()> g = std::move(f);
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move): testing moved-from
  ASSERT_TRUE(g);
  EXPECT_EQ(g(), 5);
}

/// Counts constructions, destructions, and invocations — including invoking
/// a moved-from instance, which must never happen inside the kernel.
struct Probe {
  static int live;
  static int calls;
  static int calls_on_moved_from;
  bool moved_from = false;

  Probe() { ++live; }
  Probe(Probe&& o) noexcept {
    ++live;
    o.moved_from = true;
  }
  Probe(const Probe&) = delete;
  ~Probe() { --live; }
  void operator()() {
    ++calls;
    if (moved_from) ++calls_on_moved_from;
  }
};
int Probe::live = 0;
int Probe::calls = 0;
int Probe::calls_on_moved_from = 0;

TEST(InlineFn, CaptureLifecycleAcrossMovesAndReset) {
  Probe::live = 0;
  Probe::calls = 0;
  Probe::calls_on_moved_from = 0;
  {
    InlineFn a = Probe{};
    InlineFn b = std::move(a);
    EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
    InlineFn c;
    c = std::move(b);
    c();
    EXPECT_EQ(Probe::calls, 1);
    EXPECT_EQ(Probe::calls_on_moved_from, 0);
    c.reset();
    EXPECT_FALSE(c);
    EXPECT_EQ(Probe::live, 0);
  }
  EXPECT_EQ(Probe::live, 0);
  EXPECT_EQ(Probe::calls, 1);
}

TEST(InlineFn, MoveAssignmentDestroysPreviousCallable) {
  Probe::live = 0;
  InlineFn a = Probe{};
  EXPECT_EQ(Probe::live, 1);
  int x = 0;
  a = InlineFn([&x] { x = 1; });
  EXPECT_EQ(Probe::live, 0);  // old capture destroyed by assignment
  a();
  EXPECT_EQ(x, 1);
}

}  // namespace
}  // namespace music::sim
