// Network model tests: Table II latency profiles, delays, drops, partitions
// and node crashes.
#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace music::sim {
namespace {

TEST(LatencyProfile, Table2ProfilesMatchThePaper) {
  auto p11 = LatencyProfile::profile_11();
  EXPECT_EQ(p11.name, "11");
  EXPECT_DOUBLE_EQ(p11.rtt_ms[0][1], 0.2);     // Ohio-Ohio
  EXPECT_DOUBLE_EQ(p11.rtt_ms[0][2], 15.14);   // Ohio-N.Virginia
  EXPECT_DOUBLE_EQ(p11.rtt_ms[1][2], 15.14);

  auto lus = LatencyProfile::profile_lus();
  EXPECT_DOUBLE_EQ(lus.rtt_ms[0][1], 53.79);   // Ohio-N.Calif
  EXPECT_DOUBLE_EQ(lus.rtt_ms[0][2], 72.14);   // Ohio-Oregon
  EXPECT_DOUBLE_EQ(lus.rtt_ms[1][2], 24.2);    // N.Calif-Oregon

  auto eu = LatencyProfile::profile_luseu();
  EXPECT_DOUBLE_EQ(eu.rtt_ms[0][1], 53.79);
  EXPECT_DOUBLE_EQ(eu.rtt_ms[0][2], 100.56);
  EXPECT_DOUBLE_EQ(eu.rtt_ms[1][2], 150.74);   // N.Calif-Frankfurt

  EXPECT_EQ(LatencyProfile::table2().size(), 3u);
}

TEST(LatencyProfile, MatrixIsSymmetricWithLocalDiagonal) {
  for (const auto& p : LatencyProfile::table2()) {
    for (int i = 0; i < p.num_sites(); ++i) {
      EXPECT_DOUBLE_EQ(p.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(i)], 0.2);
      for (int j = 0; j < p.num_sites(); ++j) {
        EXPECT_DOUBLE_EQ(p.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(j)],
                         p.rtt_ms[static_cast<size_t>(j)][static_cast<size_t>(i)]);
      }
    }
  }
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(7), net_(sim_, make_config()) {
    a_ = net_.add_node(0);
    b_ = net_.add_node(1);
    c_ = net_.add_node(2);
    a2_ = net_.add_node(0);
  }

  static NetworkConfig make_config() {
    NetworkConfig c;
    c.profile = LatencyProfile::profile_lus();
    c.jitter_frac = 0.0;  // exact delays for assertions
    return c;
  }

  Simulation sim_;
  Network net_;
  NodeId a_, b_, c_, a2_;
};

TEST_F(NetworkTest, OneWayDelayIsHalfRtt) {
  // Ohio -> N.Calif: RTT 53.79ms -> one way 26.895ms (+ tiny bandwidth).
  Duration d = net_.sample_delay(a_, b_, 0);
  EXPECT_NEAR(static_cast<double>(d), 26895.0, 1.0);
  // Same-site: 0.2ms RTT -> 0.1ms.
  Duration local = net_.sample_delay(a_, a2_, 0);
  EXPECT_NEAR(static_cast<double>(local), 100.0, 1.0);
}

TEST_F(NetworkTest, BandwidthTermGrowsWithMessageSize) {
  Duration small = net_.sample_delay(a_, b_, 100);
  Duration large = net_.sample_delay(a_, b_, 256 * 1024);
  // 256KB over 1Gbps ~ 2.1ms extra.
  EXPECT_GT(large, small + 1500);
}

TEST_F(NetworkTest, MessageDeliveredAfterDelay) {
  Time delivered = -1;
  net_.send(a_, b_, 0, [&] { delivered = sim_.now(); });
  sim_.run_until_idle();
  EXPECT_NEAR(static_cast<double>(delivered), 26895.0, 1.0);
  EXPECT_EQ(net_.messages_sent(), 1u);
  EXPECT_EQ(net_.messages_dropped(), 0u);
}

TEST_F(NetworkTest, CrashedNodeDropsTraffic) {
  net_.set_node_down(b_, true);
  bool delivered = false;
  net_.send(a_, b_, 0, [&] { delivered = true; });
  sim_.run_until_idle();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.messages_dropped(), 1u);

  net_.set_node_down(b_, false);
  net_.send(a_, b_, 0, [&] { delivered = true; });
  sim_.run_until_idle();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, CrashDuringFlightDropsAtDelivery) {
  bool delivered = false;
  net_.send(a_, b_, 0, [&] { delivered = true; });
  // Take the destination down while the message is in flight.
  sim_.schedule(1000, [&] { net_.set_node_down(b_, true); });
  sim_.run_until_idle();
  EXPECT_FALSE(delivered);
}

TEST_F(NetworkTest, PartitionBlocksCrossTrafficOnly) {
  net_.partition_sites({0}, {1, 2});
  EXPECT_FALSE(net_.deliverable(a_, b_));
  EXPECT_FALSE(net_.deliverable(c_, a_));
  EXPECT_TRUE(net_.deliverable(b_, c_));   // same side
  EXPECT_TRUE(net_.deliverable(a_, a2_));  // same site

  bool crossed = false;
  bool same_side = false;
  net_.send(a_, b_, 0, [&] { crossed = true; });
  net_.send(b_, c_, 0, [&] { same_side = true; });
  sim_.run_until_idle();
  EXPECT_FALSE(crossed);
  EXPECT_TRUE(same_side);

  net_.heal_partition();
  net_.send(a_, b_, 0, [&] { crossed = true; });
  sim_.run_until_idle();
  EXPECT_TRUE(crossed);
}

TEST(NetworkDrops, DropProbabilityLosesRoughlyThatFraction) {
  Simulation s(11);
  NetworkConfig cfg;
  cfg.profile = LatencyProfile::uniform(2, 10.0);
  cfg.drop_prob = 0.3;
  Network net(s, cfg);
  NodeId a = net.add_node(0);
  NodeId b = net.add_node(1);
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) net.send(a, b, 0, [&] { ++delivered; });
  s.run_until_idle();
  EXPECT_NEAR(delivered, 1400, 100);
}

TEST(NetworkJitter, JitterVariesDelays) {
  Simulation s(13);
  NetworkConfig cfg;
  cfg.profile = LatencyProfile::profile_lus();
  cfg.jitter_frac = 0.02;
  Network net(s, cfg);
  NodeId a = net.add_node(0);
  NodeId b = net.add_node(1);
  Duration d1 = net.sample_delay(a, b, 0);
  bool varied = false;
  for (int i = 0; i < 50; ++i) {
    if (net.sample_delay(a, b, 0) != d1) varied = true;
  }
  EXPECT_TRUE(varied);
  // Bounded by +/-2%.
  for (int i = 0; i < 50; ++i) {
    double d = static_cast<double>(net.sample_delay(a, b, 0));
    EXPECT_GE(d, 26895.0 * 0.975);
    EXPECT_LE(d, 26895.0 * 1.025);
  }
}

}  // namespace
}  // namespace music::sim
