// Network model tests: Table II latency profiles, delays, drops, partitions
// and node crashes.
#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace music::sim {
namespace {

TEST(LatencyProfile, Table2ProfilesMatchThePaper) {
  auto p11 = LatencyProfile::profile_11();
  EXPECT_EQ(p11.name, "11");
  EXPECT_DOUBLE_EQ(p11.rtt_ms[0][1], 0.2);     // Ohio-Ohio
  EXPECT_DOUBLE_EQ(p11.rtt_ms[0][2], 15.14);   // Ohio-N.Virginia
  EXPECT_DOUBLE_EQ(p11.rtt_ms[1][2], 15.14);

  auto lus = LatencyProfile::profile_lus();
  EXPECT_DOUBLE_EQ(lus.rtt_ms[0][1], 53.79);   // Ohio-N.Calif
  EXPECT_DOUBLE_EQ(lus.rtt_ms[0][2], 72.14);   // Ohio-Oregon
  EXPECT_DOUBLE_EQ(lus.rtt_ms[1][2], 24.2);    // N.Calif-Oregon

  auto eu = LatencyProfile::profile_luseu();
  EXPECT_DOUBLE_EQ(eu.rtt_ms[0][1], 53.79);
  EXPECT_DOUBLE_EQ(eu.rtt_ms[0][2], 100.56);
  EXPECT_DOUBLE_EQ(eu.rtt_ms[1][2], 150.74);   // N.Calif-Frankfurt

  EXPECT_EQ(LatencyProfile::table2().size(), 3u);
}

TEST(LatencyProfile, MatrixIsSymmetricWithLocalDiagonal) {
  for (const auto& p : LatencyProfile::table2()) {
    for (int i = 0; i < p.num_sites(); ++i) {
      EXPECT_DOUBLE_EQ(p.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(i)], 0.2);
      for (int j = 0; j < p.num_sites(); ++j) {
        EXPECT_DOUBLE_EQ(p.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(j)],
                         p.rtt_ms[static_cast<size_t>(j)][static_cast<size_t>(i)]);
      }
    }
  }
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(7), net_(sim_, make_config()) {
    a_ = net_.add_node(0);
    b_ = net_.add_node(1);
    c_ = net_.add_node(2);
    a2_ = net_.add_node(0);
  }

  static NetworkConfig make_config() {
    NetworkConfig c;
    c.profile = LatencyProfile::profile_lus();
    c.jitter_frac = 0.0;  // exact delays for assertions
    return c;
  }

  Simulation sim_;
  Network net_;
  NodeId a_, b_, c_, a2_;
};

TEST_F(NetworkTest, OneWayDelayIsHalfRtt) {
  // Ohio -> N.Calif: RTT 53.79ms -> one way 26.895ms (+ tiny bandwidth).
  Duration d = net_.sample_delay(a_, b_, 0);
  EXPECT_NEAR(static_cast<double>(d), 26895.0, 1.0);
  // Same-site: 0.2ms RTT -> 0.1ms.
  Duration local = net_.sample_delay(a_, a2_, 0);
  EXPECT_NEAR(static_cast<double>(local), 100.0, 1.0);
}

TEST_F(NetworkTest, BandwidthTermGrowsWithMessageSize) {
  Duration small = net_.sample_delay(a_, b_, 100);
  Duration large = net_.sample_delay(a_, b_, 256 * 1024);
  // 256KB over 1Gbps ~ 2.1ms extra.
  EXPECT_GT(large, small + 1500);
}

TEST_F(NetworkTest, MessageDeliveredAfterDelay) {
  Time delivered = -1;
  net_.send(a_, b_, 0, [&] { delivered = sim_.now(); });
  sim_.run_until_idle();
  EXPECT_NEAR(static_cast<double>(delivered), 26895.0, 1.0);
  EXPECT_EQ(net_.messages_sent(), 1u);
  EXPECT_EQ(net_.messages_dropped(), 0u);
}

TEST_F(NetworkTest, CrashedNodeDropsTraffic) {
  net_.set_node_down(b_, true);
  bool delivered = false;
  net_.send(a_, b_, 0, [&] { delivered = true; });
  sim_.run_until_idle();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.messages_dropped(), 1u);

  net_.set_node_down(b_, false);
  net_.send(a_, b_, 0, [&] { delivered = true; });
  sim_.run_until_idle();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, CrashDuringFlightDropsAtDelivery) {
  bool delivered = false;
  net_.send(a_, b_, 0, [&] { delivered = true; });
  // Take the destination down while the message is in flight.
  sim_.schedule(1000, [&] { net_.set_node_down(b_, true); });
  sim_.run_until_idle();
  EXPECT_FALSE(delivered);
}

TEST_F(NetworkTest, PartitionBlocksCrossTrafficOnly) {
  net_.partition_sites({0}, {1, 2});
  EXPECT_FALSE(net_.deliverable(a_, b_));
  EXPECT_FALSE(net_.deliverable(c_, a_));
  EXPECT_TRUE(net_.deliverable(b_, c_));   // same side
  EXPECT_TRUE(net_.deliverable(a_, a2_));  // same site

  bool crossed = false;
  bool same_side = false;
  net_.send(a_, b_, 0, [&] { crossed = true; });
  net_.send(b_, c_, 0, [&] { same_side = true; });
  sim_.run_until_idle();
  EXPECT_FALSE(crossed);
  EXPECT_TRUE(same_side);

  net_.heal_partition();
  net_.send(a_, b_, 0, [&] { crossed = true; });
  sim_.run_until_idle();
  EXPECT_TRUE(crossed);
}

TEST_F(NetworkTest, PartitionsStackInsteadOfReplacing) {
  // Regression: partition_sites used to silently REPLACE the active
  // partition, so the second call below would have reopened 0<->1.
  PartitionId p01 = net_.partition_sites({0}, {1});
  PartitionId p12 = net_.partition_sites({1}, {2});
  EXPECT_EQ(net_.active_partitions(), 2u);
  EXPECT_FALSE(net_.deliverable(a_, b_));  // first partition still holds
  EXPECT_FALSE(net_.deliverable(b_, c_));
  EXPECT_TRUE(net_.deliverable(a_, c_));  // no partition separates 0 and 2

  // Healing is per-id: dropping 1|2 must not heal 0|1.
  net_.heal_partition(p12);
  EXPECT_FALSE(net_.deliverable(a_, b_));
  EXPECT_TRUE(net_.deliverable(b_, c_));
  net_.heal_partition(p01);
  EXPECT_TRUE(net_.deliverable(a_, b_));
  EXPECT_EQ(net_.active_partitions(), 0u);
}

TEST_F(NetworkTest, HealAllPartitionsAndNoArgCompat) {
  net_.partition_sites({0}, {1});
  net_.partition_sites({0}, {2});
  EXPECT_EQ(net_.active_partitions(), 2u);
  net_.heal_partition();  // the pre-stacking no-arg call heals everything
  EXPECT_EQ(net_.active_partitions(), 0u);
  EXPECT_TRUE(net_.deliverable(a_, b_));
  EXPECT_TRUE(net_.deliverable(a_, c_));
}

TEST_F(NetworkTest, BlackholeIsDirected) {
  LinkFault f;
  f.blackhole = true;
  LinkFaultId id = net_.add_link_fault(0, 1, f);
  EXPECT_FALSE(net_.deliverable(a_, b_));
  EXPECT_TRUE(net_.deliverable(b_, a_));  // reverse direction untouched

  bool forward = false, backward = false;
  net_.send(a_, b_, 0, [&] { forward = true; });
  net_.send(b_, a_, 0, [&] { backward = true; });
  sim_.run_until_idle();
  EXPECT_FALSE(forward);
  EXPECT_TRUE(backward);
  EXPECT_EQ(net_.link_fault_drops(), 0u);  // blackhole drops at deliverable()

  net_.remove_link_fault(id);
  net_.send(a_, b_, 0, [&] { forward = true; });
  sim_.run_until_idle();
  EXPECT_TRUE(forward);
}

TEST_F(NetworkTest, GrayLinkDropsRoughlyItsLossFraction) {
  LinkFault f;
  f.extra_drop = 0.5;
  net_.add_link_fault(0, 1, f);
  int delivered = 0;
  const int kMsgs = 2000;
  for (int i = 0; i < kMsgs; ++i) {
    net_.send(a_, b_, 0, [&] { ++delivered; });
  }
  sim_.run_until_idle();
  EXPECT_GT(delivered, kMsgs / 2 - 200);
  EXPECT_LT(delivered, kMsgs / 2 + 200);
  EXPECT_EQ(net_.link_fault_drops(),
            static_cast<uint64_t>(kMsgs - delivered));
}

TEST_F(NetworkTest, LatencySpikeAddsDelay) {
  LinkFault f;
  f.extra_delay_ms = 100.0;
  net_.add_link_fault(0, 1, f);
  Time delivered = -1;
  net_.send(a_, b_, 0, [&] { delivered = sim_.now(); });
  sim_.run_until_idle();
  // Base one-way 26.895ms + 100ms spike.
  EXPECT_NEAR(static_cast<double>(delivered), 126895.0, 1.0);
  // The reverse direction is unaffected.
  net_.send(b_, a_, 0, [&] { delivered = sim_.now(); });
  Time t0 = sim_.now();
  sim_.run_until_idle();
  EXPECT_NEAR(static_cast<double>(sim_.now() - t0), 26895.0, 1.0);
}

TEST_F(NetworkTest, DuplicationIsDedupedAtTheEndpoint) {
  // The endpoint continuations are single-shot RPC promises, so the network
  // models receiver-side dedup: the payload fires exactly once, at the
  // earlier of the two sampled arrivals (duplication shows up as early or
  // reordered delivery, never as a double-invoked continuation).
  LinkFault f;
  f.dup_prob = 1.0;
  net_.add_link_fault(0, 1, f);
  int deliveries = 0;
  Time delivered = -1;
  net_.send(a_, b_, 0, [&] {
    ++deliveries;
    delivered = sim_.now();
  });
  sim_.run_until_idle();
  EXPECT_EQ(deliveries, 1);
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(net_.messages_sent(), 1u);  // a dup is not a send
  EXPECT_EQ(net_.duplicates_delivered(), 1u);
}

TEST_F(NetworkTest, ComposedFaultsOnOneLink) {
  // A gray link and a latency spike on the same pair compose: delays add,
  // and a blackhole added on top dominates both.
  LinkFault spike;
  spike.extra_delay_ms = 50.0;
  net_.add_link_fault(0, 1, spike);
  LinkFault spike2;
  spike2.extra_delay_ms = 25.0;
  net_.add_link_fault(0, 1, spike2);
  Time delivered = -1;
  net_.send(a_, b_, 0, [&] { delivered = sim_.now(); });
  sim_.run_until_idle();
  EXPECT_NEAR(static_cast<double>(delivered), 26895.0 + 75000.0, 1.0);

  LinkFault hole;
  hole.blackhole = true;
  LinkFaultId id = net_.add_link_fault(0, 1, hole);
  EXPECT_FALSE(net_.deliverable(a_, b_));
  net_.remove_link_fault(id);
  EXPECT_TRUE(net_.deliverable(a_, b_));
  net_.clear_link_faults();
  EXPECT_EQ(net_.active_link_faults(), 0u);
}

TEST(NetworkDrops, DropProbabilityLosesRoughlyThatFraction) {
  Simulation s(11);
  NetworkConfig cfg;
  cfg.profile = LatencyProfile::uniform(2, 10.0);
  cfg.drop_prob = 0.3;
  Network net(s, cfg);
  NodeId a = net.add_node(0);
  NodeId b = net.add_node(1);
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) net.send(a, b, 0, [&] { ++delivered; });
  s.run_until_idle();
  EXPECT_NEAR(delivered, 1400, 100);
}

TEST(NetworkJitter, JitterVariesDelays) {
  Simulation s(13);
  NetworkConfig cfg;
  cfg.profile = LatencyProfile::profile_lus();
  cfg.jitter_frac = 0.02;
  Network net(s, cfg);
  NodeId a = net.add_node(0);
  NodeId b = net.add_node(1);
  Duration d1 = net.sample_delay(a, b, 0);
  bool varied = false;
  for (int i = 0; i < 50; ++i) {
    if (net.sample_delay(a, b, 0) != d1) varied = true;
  }
  EXPECT_TRUE(varied);
  // Bounded by +/-2%.
  for (int i = 0; i < 50; ++i) {
    double d = static_cast<double>(net.sample_delay(a, b, 0));
    EXPECT_GE(d, 26895.0 * 0.975);
    EXPECT_LE(d, 26895.0 * 1.025);
  }
}

}  // namespace
}  // namespace music::sim
