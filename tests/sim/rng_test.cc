// Rng tests: determinism, stream independence via fork(), distribution
// sanity.
#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace music::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformIntStaysInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
  // Degenerate range.
  EXPECT_EQ(r.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversTheRange) {
  Rng r(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(2.0));
  }
}

TEST(Rng, ChanceRatesRoughlyCorrect) {
  Rng r(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  // Different tags diverge.
  bool differ = false;
  for (int i = 0; i < 16; ++i) {
    if (child1.next_u64() != child2.next_u64()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Rng, ForkIsDeterministicGivenParentStateAndTag) {
  Rng p1(7), p2(7);
  Rng a = p1.fork(42);
  Rng b = p2.fork(42);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ExponentialHasRoughlyTheRequestedMean) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / kN, 50.0, 2.0);
}

TEST(Rng, UniformRealHalfOpen) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform_real(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Backoff, DecorrelatedJitterStaysInWindowAndCaps) {
  // The shared reconnect/retry jitter scheme: every draw lands in
  // [base, min(cap, 3*prev)], never exceeds the cap no matter how long the
  // outage, and actually jitters (draws differ).
  Rng r(0xBACC0FF);
  const int64_t base = 50, cap = 2000;
  int64_t prev = base;
  bool saw_distinct = false;
  int64_t last = -1;
  for (int i = 0; i < 500; ++i) {
    int64_t next = decorrelated_backoff(base, cap, prev, r);
    EXPECT_GE(next, base);
    EXPECT_LE(next, cap);
    EXPECT_LE(next, std::max(base, 3 * prev));
    if (last >= 0 && next != last) saw_distinct = true;
    last = next;
    prev = next;
  }
  EXPECT_TRUE(saw_distinct) << "no jitter: every backoff identical";
}

TEST(Backoff, DegenerateWindowsReturnBase) {
  Rng r(7);
  // prev so small that 3*prev <= base: the window is empty, take base.
  EXPECT_EQ(decorrelated_backoff(300, 1000, 0, r), 300);
  EXPECT_EQ(decorrelated_backoff(300, 1000, 100, r), 300);
  // cap == base pins the schedule flat.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(decorrelated_backoff(64, 64, 64, r), 64);
}

}  // namespace
}  // namespace music::sim
