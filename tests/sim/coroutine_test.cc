// Tests for the coroutine layer: Task chaining, futures, timeouts, quorum
// gathering — the machinery every protocol in the repo is built on.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "sim/future.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace music::sim {
namespace {

Task<int> add_after(Simulation& s, Duration d, int a, int b) {
  co_await sleep_for(s, d);
  co_return a + b;
}

Task<int> chain(Simulation& s) {
  int x = co_await add_after(s, 100, 1, 2);
  int y = co_await add_after(s, 100, x, 10);
  co_return y;
}

TEST(Coroutine, SleepAdvancesVirtualTime) {
  Simulation s;
  Time finished = -1;
  spawn(s, [](Simulation& sm, Time& f) -> Task<void> {
    co_await sleep_for(sm, 1234);
    f = sm.now();
  }(s, finished));
  s.run_until_idle();
  EXPECT_EQ(finished, 1234);
}

TEST(Coroutine, TasksChainAndReturnValues) {
  Simulation s;
  int result = 0;
  spawn(s, [](Simulation& sm, int& r) -> Task<void> {
    r = co_await chain(sm);
  }(s, result));
  s.run_until_idle();
  EXPECT_EQ(result, 13);
}

TEST(Coroutine, ManyConcurrentTasksInterleave) {
  Simulation s;
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    spawn(s, [](Simulation& sm, int i_, int& d) -> Task<void> {
      co_await sleep_for(sm, 10 * (i_ % 7 + 1));
      ++d;
    }(s, i, done));
  }
  s.run_until_idle();
  EXPECT_EQ(done, 100);
}

TEST(Coroutine, StringParamsSurviveSuspension) {
  // Regression guard for the GCC 12 parameter-copy bug family: by-value
  // string and user-ctor struct params must be real copies.
  Simulation s;
  std::string out;
  spawn(s, [](Simulation& sm, std::string& o) -> Task<void> {
    std::string heap_str(64, 'q');
    auto t = [](Simulation& sm2, std::string v) -> Task<std::string> {
      co_await sleep_for(sm2, 100);
      co_return v + "!";
    };
    o = co_await t(sm, heap_str);
  }(s, out));
  s.run_until_idle();
  EXPECT_EQ(out, std::string(64, 'q') + "!");
}

TEST(Future, ValueDeliveredToAwaiter) {
  Simulation s;
  Promise<int> p(s);
  int got = 0;
  spawn(s, [](Future<int> f, int& g) -> Task<void> {
    g = co_await f;
  }(p.future(), got));
  s.schedule(500, [p] { p.set_value(77); });
  s.run_until_idle();
  EXPECT_EQ(got, 77);
}

TEST(Future, AwaitingAnAlreadyReadyFutureResumesPromptly) {
  Simulation s;
  Promise<int> p(s);
  p.set_value(5);
  int got = 0;
  spawn(s, [](Future<int> f, int& g) -> Task<void> {
    g = co_await f;
  }(p.future(), got));
  s.run_until_idle();
  EXPECT_EQ(got, 5);
}

TEST(Future, OnValueReceivesCopyWithoutSelfCapture) {
  Simulation s;
  Promise<std::string> p(s);
  std::string got;
  p.future().on_value([&got](const std::string& v) { got = v; });
  p.set_value("hello");
  s.run_until_idle();
  EXPECT_EQ(got, "hello");
}

TEST(Future, NeverFulfilledPromiseDoesNotLeakThroughOnValue) {
  // The callback holds no reference to the future, so dropping both ends
  // frees the shared state (LeakSanitizer enforces this in ASan runs).
  Simulation s;
  {
    Promise<int> p(s);
    p.future().on_value([](const int&) {});
  }
  s.run_until_idle();
  SUCCEED();
}

TEST(Timeout, ValueBeatsTimeout) {
  Simulation s;
  Promise<int> p(s);
  std::optional<int> got;
  spawn(s, [](Simulation& sm, Future<int> f, std::optional<int>& g) -> Task<void> {
    g = co_await await_with_timeout(sm, f, 1000);
  }(s, p.future(), got));
  s.schedule(500, [p] { p.set_value(9); });
  s.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 9);
}

TEST(Timeout, TimeoutBeatsValue) {
  Simulation s;
  Promise<int> p(s);
  std::optional<int> got = 123;
  Time when = -1;
  spawn(s, [](Simulation& sm, Future<int> f, std::optional<int>& g,
              Time& w) -> Task<void> {
    g = co_await await_with_timeout(sm, f, 1000);
    w = sm.now();
  }(s, p.future(), got, when));
  s.schedule(5000, [p] { p.set_value(9); });  // too late
  s.run_until_idle();
  EXPECT_FALSE(got.has_value());
  EXPECT_LE(when, 1100);  // resumed at the timeout, not the late value
}

TEST(AwaitCount, ReturnsWhenQuorumReached) {
  Simulation s;
  std::vector<Promise<int>> ps;
  std::vector<Future<int>> fs;
  for (int i = 0; i < 5; ++i) {
    ps.emplace_back(s);
    fs.push_back(ps.back().future());
  }
  std::vector<int> got;
  Time when = -1;
  spawn(s, [](Simulation& sm, std::vector<Future<int>> f, std::vector<int>& g,
              Time& w) -> Task<void> {
    g = co_await await_count<int>(sm, std::move(f), 3, sec(10));
    w = sm.now();
  }(s, fs, got, when));
  for (int i = 0; i < 5; ++i) {
    s.schedule(100 * (i + 1), [p = ps[static_cast<size_t>(i)], i] {
      p.set_value(i);
    });
  }
  s.run_until_idle();
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(when, 300);  // resumed at the third arrival
}

TEST(AwaitCount, TimeoutReturnsPartialResults) {
  Simulation s;
  std::vector<Promise<int>> ps;
  std::vector<Future<int>> fs;
  for (int i = 0; i < 3; ++i) {
    ps.emplace_back(s);
    fs.push_back(ps.back().future());
  }
  std::vector<int> got;
  spawn(s, [](Simulation& sm, std::vector<Future<int>> f,
              std::vector<int>& g) -> Task<void> {
    g = co_await await_count<int>(sm, std::move(f), 3, ms(1));
  }(s, fs, got));
  s.schedule(100, [p = ps[0]] { p.set_value(1); });  // only one arrives
  s.run_until_idle();
  EXPECT_EQ(got.size(), 1u);  // partial: below the wanted quorum of 3
}

TEST(AwaitCount, ZeroWantedResolvesImmediately) {
  Simulation s;
  std::vector<int> got{1, 2, 3};
  spawn(s, [](Simulation& sm, std::vector<int>& g) -> Task<void> {
    g = co_await await_count<int>(sm, {}, 0, sec(1));
  }(s, got));
  s.run_until_idle();
  EXPECT_TRUE(got.empty());
}

TEST(AwaitAll, WaitsForEverything) {
  Simulation s;
  std::vector<Promise<Unit>> ps;
  std::vector<Future<Unit>> fs;
  for (int i = 0; i < 4; ++i) {
    ps.emplace_back(s);
    fs.push_back(ps.back().future());
    s.schedule(50 * (i + 1), [p = ps.back()] { p.set_value(Unit{}); });
  }
  size_t n = 0;
  spawn(s, [](Simulation& sm, std::vector<Future<Unit>> f, size_t& out)
            -> Task<void> {
    auto all = co_await await_all<Unit>(sm, std::move(f));
    out = all.size();
  }(s, fs, n));
  s.run_until_idle();
  EXPECT_EQ(n, 4u);
}

}  // namespace
}  // namespace music::sim
