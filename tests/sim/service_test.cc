// Server compute and disk model tests: queueing math, parallelism, crash
// discard semantics.
#include "sim/service.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace music::sim {
namespace {

ServiceConfig one_worker(Duration base) {
  ServiceConfig c;
  c.workers = 1;
  c.base_cost_us = base;
  c.per_byte_ns = 0.0;
  return c;
}

TEST(ServiceNode, CostModelIncludesPerByteTerm) {
  Simulation s;
  ServiceConfig cfg;
  cfg.base_cost_us = 100;
  cfg.per_byte_ns = 2.0;
  ServiceNode n(s, cfg);
  EXPECT_EQ(n.cost_for(0), 100);
  EXPECT_EQ(n.cost_for(500'000), 100 + 1000);  // 500KB * 2ns = 1ms
}

TEST(ServiceNode, SingleWorkerSerializesWork) {
  Simulation s;
  ServiceNode n(s, one_worker(100));
  std::vector<Time> completions;
  for (int i = 0; i < 3; ++i) {
    n.submit_cost(100, [&] { completions.push_back(s.now()); });
  }
  s.run_until_idle();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 100);
  EXPECT_EQ(completions[1], 200);
  EXPECT_EQ(completions[2], 300);
}

TEST(ServiceNode, MultipleWorkersRunInParallel) {
  Simulation s;
  ServiceConfig cfg = one_worker(100);
  cfg.workers = 4;
  ServiceNode n(s, cfg);
  std::vector<Time> completions;
  for (int i = 0; i < 8; ++i) {
    n.submit_cost(100, [&] { completions.push_back(s.now()); });
  }
  s.run_until_idle();
  ASSERT_EQ(completions.size(), 8u);
  // First 4 at t=100, next 4 at t=200.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(completions[static_cast<size_t>(i)], 100);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(completions[static_cast<size_t>(i)], 200);
}

TEST(ServiceNode, ThroughputMatchesLittleLaw) {
  // 8 workers x 200us -> 40k ops/s capacity.
  Simulation s;
  ServiceConfig cfg;
  cfg.workers = 8;
  cfg.base_cost_us = 200;
  cfg.per_byte_ns = 0;
  ServiceNode n(s, cfg);
  int done = 0;
  for (int i = 0; i < 40000; ++i) n.submit_cost(200, [&] { ++done; });
  s.run_until_idle();
  EXPECT_EQ(done, 40000);
  EXPECT_EQ(s.now(), sec(1));
}

TEST(ServiceNode, DownNodeDiscardsSubmissions) {
  Simulation s;
  ServiceNode n(s, one_worker(10));
  n.set_down(true);
  bool ran = false;
  n.submit_cost(10, [&] { ran = true; });
  s.run_until_idle();
  EXPECT_FALSE(ran);
}

TEST(ServiceNode, CrashDiscardsInFlightWork) {
  Simulation s;
  ServiceNode n(s, one_worker(1000));
  bool ran = false;
  n.submit_cost(1000, [&] { ran = true; });
  s.schedule(500, [&] { n.set_down(true); });  // crash mid-processing
  s.run_until_idle();
  EXPECT_FALSE(ran);
}

TEST(ServiceNode, RestartProcessesNewWork) {
  Simulation s;
  ServiceNode n(s, one_worker(10));
  n.set_down(true);
  n.set_down(false);
  bool ran = false;
  n.submit_cost(10, [&] { ran = true; });
  s.run_until_idle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(n.completed(), 1u);
}

TEST(Disk, FsyncCostsBasePlusBandwidth) {
  Simulation s;
  DiskConfig cfg;
  cfg.fsync_base_us = 1000;
  cfg.write_bps = 100e6;  // 100MB/s
  Disk d(s, cfg);
  Time done_at = -1;
  d.write_sync(1'000'000, [&] { done_at = s.now(); });  // 1MB -> 10ms + 1ms
  s.run_until_idle();
  EXPECT_EQ(done_at, 11'000);
}

TEST(Disk, RequestsQueueFifo) {
  Simulation s;
  DiskConfig cfg;
  cfg.fsync_base_us = 100;
  cfg.write_bps = 1e12;
  Disk d(s, cfg);
  std::vector<Time> at;
  for (int i = 0; i < 3; ++i) d.write_sync(0, [&] { at.push_back(s.now()); });
  s.run_until_idle();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 100);
  EXPECT_EQ(at[1], 200);
  EXPECT_EQ(at[2], 300);
}

TEST(Disk, CrashDiscardsPendingWrites) {
  Simulation s;
  DiskConfig cfg;
  cfg.fsync_base_us = 1000;
  Disk d(s, cfg);
  bool ran = false;
  d.write_sync(0, [&] { ran = true; });
  s.schedule(500, [&] { d.set_down(true); });
  s.run_until_idle();
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace music::sim
