// Determinism goldens for the simulation kernel.
//
// Pins the exact seeded behaviour of a full MUSIC deployment — events run,
// final virtual time, network counters and the ECF history observed by
// checked clients — to values captured BEFORE the fast-path kernel swap
// (InlineFn + arena heap replacing std::function + std::priority_queue).
// Any kernel change that alters event ordering, the rng stream, or the
// number of events executed breaks these constants; a deliberate semantic
// change must regenerate them.
//
// Regenerate with:
//   MUSIC_REGEN_GOLDENS=1 ./sim_determinism_golden_test
// and paste the printed table over kGoldens below.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/client.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "util/world.h"
#include "verify/oracle.h"

namespace music {
namespace {

/// FNV-1a 64-bit; the fingerprint accumulator.
struct Fnv {
  uint64_t h = 0xcbf29ce484222325ull;
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  void mix(const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    mix(s.size());
  }
};

struct Golden {
  uint64_t seed;
  const char* profile;
  uint64_t events_run;
  uint64_t fingerprint;
};

// Captured on the pre-swap kernel (std::function + std::priority_queue);
// the arena-heap kernel must reproduce every row bit-identically.
constexpr Golden kGoldens[] = {
    {1, "11", 7418, 0x4fbfc51cce0219bbull},
    {2, "11", 7432, 0x179c7ade4a15643aull},
    {3, "11", 7418, 0xb143aa4469a42f46ull},
    {4, "11", 7390, 0xbaef5d1acc0dd1c9ull},
    {1, "lUs", 10816, 0x710085b784dc2c79ull},
    {2, "lUs", 10766, 0x162c9de99d05802cull},
    {3, "lUs", 11328, 0xcaf59f79fa84bba7ull},
    {4, "lUs", 10200, 0xb2808834383243d1ull},
};

sim::LatencyProfile profile_by_name(const std::string& name) {
  return name == "11" ? sim::LatencyProfile::profile_11()
                      : sim::LatencyProfile::profile_lus();
}

/// One checked client's life: contended critical sections on a shared key,
/// every observable transition appended to the shared history log.
sim::Task<void> client_loop(test::MusicWorld& w, verify::EcfChecker& checker,
                            int cid, Fnv& log) {
  verify::CheckedClient c(w.client(static_cast<size_t>(cid)), checker);
  // Built stepwise: GCC 12 mis-fires -Werror=restrict on literal +
  // to_string rvalue concats (see bench/common.h).
  Key key = "g";
  key += std::to_string(cid % 3);  // 2 clients contend per key
  for (int round = 0; round < 4; ++round) {
    auto ref = co_await c.create_lock_ref(key);
    log.mix(static_cast<uint64_t>(w.sim.now()));
    if (!ref.ok()) continue;
    log.mix(static_cast<uint64_t>(ref.value()));
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    log.mix(static_cast<uint64_t>(acq.status()));
    if (!acq.ok()) continue;
    for (int i = 0; i < 2; ++i) {
      std::string payload = "c";
      payload += std::to_string(cid);
      payload += "r";
      payload += std::to_string(round);
      payload += "i";
      payload += std::to_string(i);
      Value v(std::move(payload));
      auto st = co_await c.critical_put(key, ref.value(), v);
      log.mix(static_cast<uint64_t>(st.status()));
    }
    auto got = co_await c.critical_get(key, ref.value());
    log.mix(static_cast<uint64_t>(got.status()));
    if (got.ok()) log.mix(got.value().data);
    auto rel = co_await c.release_lock(key, ref.value());
    log.mix(static_cast<uint64_t>(rel.status()));
    log.mix(static_cast<uint64_t>(w.sim.now()));
  }
}

struct RunOutcome {
  uint64_t events_run;
  uint64_t fingerprint;
};

RunOutcome run_scenario(uint64_t seed, const std::string& profile_name) {
  test::WorldOptions opt;
  opt.seed = seed;
  opt.profile = profile_by_name(profile_name);
  opt.clients_per_site = 2;
  test::MusicWorld w(opt);
  verify::EcfChecker checker(w.sim);
  Fnv history;
  for (int cid = 0; cid < 6; ++cid) {
    sim::spawn(w.sim, client_loop(w, checker, cid, history));
  }
  w.sim.run_until(sim::sec(600));

  EXPECT_TRUE(checker.ok()) << checker.report();
  Fnv fp;
  fp.mix(history.h);
  fp.mix(w.sim.events_run());
  fp.mix(static_cast<uint64_t>(w.sim.now()));
  fp.mix(w.net.messages_sent());
  fp.mix(w.net.messages_dropped());
  fp.mix(w.net.bytes_sent());
  fp.mix(w.net.wan_messages_sent());
  for (size_t k = 0; k < static_cast<size_t>(sim::MsgKind::kCount); ++k) {
    fp.mix(w.net.messages_sent(static_cast<sim::MsgKind>(k)));
  }
  fp.mix(checker.violations().size());
  for (int key = 0; key < 3; ++key) {
    std::string name = "g";
    name += std::to_string(key);
    auto truth = checker.stable_truth(name, sim::sec(1));
    fp.mix(truth.has_value() ? truth->data : std::string("<none>"));
  }
  return {w.sim.events_run(), fp.h};
}

TEST(DeterminismGolden, SeededRunsMatchPreSwapKernel) {
  bool regen = std::getenv("MUSIC_REGEN_GOLDENS") != nullptr;
  for (const Golden& g : kGoldens) {
    RunOutcome out = run_scenario(g.seed, g.profile);
    if (regen) {
      std::printf("    {%llu, \"%s\", %llu, 0x%016llxull},\n",
                  static_cast<unsigned long long>(g.seed), g.profile,
                  static_cast<unsigned long long>(out.events_run),
                  static_cast<unsigned long long>(out.fingerprint));
      continue;
    }
    EXPECT_EQ(out.events_run, g.events_run)
        << "seed " << g.seed << " profile " << g.profile;
    EXPECT_EQ(out.fingerprint, g.fingerprint)
        << "seed " << g.seed << " profile " << g.profile;
  }
}

/// The same seed twice in one process must fingerprint identically (guards
/// against hidden global state in the kernel, the pools, or the rng).
TEST(DeterminismGolden, RepeatRunsInProcessAreIdentical) {
  RunOutcome a = run_scenario(7, "lUs");
  RunOutcome b = run_scenario(7, "lUs");
  EXPECT_EQ(a.events_run, b.events_run);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

}  // namespace
}  // namespace music
