// Unit tests for the discrete-event kernel: ordering, clock advancement,
// determinism, event payload lifecycle.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <utility>
#include <vector>

namespace music::sim {
namespace {

TEST(Simulation, StartsAtTimeZeroAndIdle) {
  Simulation s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.idle());
  EXPECT_FALSE(s.step());
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule(300, [&] { order.push_back(3); });
  s.schedule(100, [&] { order.push_back(1); });
  s.schedule(200, [&] { order.push_back(2); });
  s.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300);
}

TEST(Simulation, SameTimeEventsRunInSchedulingOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(50, [&order, i] { order.push_back(i); });
  }
  s.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation s;
  s.schedule(100, [] {});
  s.run_until_idle();
  bool ran = false;
  s.schedule(-50, [&] { ran = true; });
  s.run_until_idle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulation, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulation s;
  s.run_until(5000);
  EXPECT_EQ(s.now(), 5000);
  s.run_for(2500);
  EXPECT_EQ(s.now(), 7500);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation s;
  int ran = 0;
  s.schedule(100, [&] { ++ran; });
  s.schedule(200, [&] { ++ran; });
  s.schedule(300, [&] { ++ran; });
  s.run_until(200);
  EXPECT_EQ(ran, 2);  // t=100 and t=200 inclusive
  EXPECT_EQ(s.now(), 200);
  s.run_until_idle();
  EXPECT_EQ(ran, 3);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule(10, recurse);
  };
  s.schedule(10, recurse);
  s.run_until_idle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 1000);
}

TEST(Simulation, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](uint64_t seed) {
    Simulation s(seed);
    std::vector<int64_t> draws;
    for (int i = 0; i < 32; ++i) draws.push_back(s.rng().uniform_int(0, 1000));
    return draws;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Simulation, CurrentSimulationSetDuringStep) {
  Simulation s;
  EXPECT_EQ(current_simulation(), nullptr);
  Simulation* seen = nullptr;
  s.schedule(1, [&] { seen = current_simulation(); });
  s.run_until_idle();
  EXPECT_EQ(seen, &s);
  EXPECT_EQ(current_simulation(), nullptr);
}

TEST(Simulation, EventCounterAdvances) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.schedule(i, [] {});
  s.run_until_idle();
  EXPECT_EQ(s.events_run(), 5u);
}

// An event running at time t can schedule follow-ups for that same instant
// (delay 0) or any time <= the run_until bound; all of them must run within
// the same run_until call, not leak into the next one.
TEST(Simulation, RunUntilRunsEventsScheduledDuringTheCall) {
  Simulation s;
  std::vector<int> ran;
  s.schedule(100, [&] {
    ran.push_back(1);
    s.schedule(0, [&] { ran.push_back(2); });   // same instant, t=100
    s.schedule(50, [&] { ran.push_back(3); });  // t=150, still <= bound
    s.schedule(51, [&] { ran.push_back(4); });  // t=151, past the bound
  });
  s.run_until(150);
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 150);
  s.run_until_idle();
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3, 4}));
}

/// Counts live instances and flags any invocation of a moved-from callable.
/// Regression guard for the old kernel's const_cast-move-out-of-top idiom:
/// the popped event's payload must be moved out of the queue before it runs
/// and the husk must never be compared against or invoked again.
struct EventProbe {
  static int live;
  static int calls_on_moved_from;
  std::vector<int>* order;
  int id;
  bool moved_from = false;

  EventProbe(std::vector<int>* o, int i) : order(o), id(i) { ++live; }
  EventProbe(EventProbe&& o) noexcept : order(o.order), id(o.id) {
    ++live;
    o.moved_from = true;
  }
  EventProbe(const EventProbe&) = delete;
  ~EventProbe() { --live; }
  void operator()() {
    if (moved_from) ++calls_on_moved_from;
    order->push_back(id);
  }
};
int EventProbe::live = 0;
int EventProbe::calls_on_moved_from = 0;

TEST(Simulation, PoppedEventsAreMovedOutOnceAndDestroyed) {
  EventProbe::live = 0;
  EventProbe::calls_on_moved_from = 0;
  std::vector<int> order;
  {
    Simulation s;
    // Interleave enough same-time and distinct-time events that heap pops
    // recycle slots while later events are still queued.
    for (int i = 0; i < 64; ++i) {
      s.schedule((i % 8) * 10, EventProbe(&order, i));
    }
    // Events scheduled from inside a running event land in freshly recycled
    // slots (the running event's slot is released before its callback runs).
    s.schedule(5, [&s, &order] {
      for (int i = 64; i < 72; ++i) s.schedule(10, EventProbe(&order, i));
    });
    s.run_until_idle();
    EXPECT_EQ(order.size(), 72u);
    EXPECT_EQ(EventProbe::calls_on_moved_from, 0);
    EXPECT_EQ(EventProbe::live, 0);  // every capture destroyed after running
  }
  // Each id ran exactly once.
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 72; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Simulation, PendingEventsAreDestroyedWithTheSimulation) {
  EventProbe::live = 0;
  std::vector<int> order;
  {
    Simulation s;
    for (int i = 0; i < 16; ++i) s.schedule(100 + i, EventProbe(&order, i));
    EXPECT_EQ(EventProbe::live, 16);
    s.run_until(105);  // run a few, leave the rest queued
  }
  EXPECT_EQ(EventProbe::live, 0);  // queued captures freed by the destructor
}

TEST(Simulation, LargeCapturesRunCorrectly) {
  // A capture past InlineFn's 64-byte inline buffer takes the pooled path;
  // the payload must survive heap sifts and slot recycling intact.
  Simulation s;
  uint64_t big[32];
  for (int i = 0; i < 32; ++i) big[static_cast<size_t>(i)] = static_cast<uint64_t>(i + 1);
  uint64_t sum = 0;
  for (int rep = 0; rep < 100; ++rep) {
    s.schedule(rep, [big, &sum] {
      for (uint64_t v : big) sum += v;
    });
  }
  s.run_until_idle();
  EXPECT_EQ(sum, 100u * (32u * 33u / 2u));
}

// Stress: random times, including rescheduling from inside callbacks, must
// execute in exactly (time, scheduling order) — compared against a stable
// sort of the schedule log.
TEST(Simulation, StressOrderingMatchesReferenceModel) {
  Simulation s;
  std::mt19937 gen(12345);
  std::uniform_int_distribution<int64_t> dist(0, 50);

  struct Logged {
    Time at;
    int id;
  };
  std::vector<Logged> scheduled;  // in seq order
  std::vector<int> ran;
  int next_id = 0;

  std::function<void(int)> spawn_children = [&](int remaining) {
    if (remaining <= 0) return;
    Duration d = dist(gen);
    int id = next_id++;
    scheduled.push_back({s.now() + d, id});
    s.schedule(d, [&, id, remaining] {
      ran.push_back(id);
      spawn_children(remaining - 1);
    });
  };

  for (int i = 0; i < 200; ++i) {
    Duration d = dist(gen);
    int id = next_id++;
    scheduled.push_back({d, id});
    s.schedule(d, [&ran, id] { ran.push_back(id); });
  }
  spawn_children(100);
  s.run_until_idle();

  // Reference: stable sort by time keeps seq order within a timestamp.
  // scheduled[] is only appended to in seq order, including the entries the
  // running events added, so this reproduces the kernel's contract.
  std::vector<Logged> expected = scheduled;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Logged& a, const Logged& b) { return a.at < b.at; });
  ASSERT_EQ(ran.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(ran[i], expected[i].id) << "at index " << i;
  }
}

}  // namespace
}  // namespace music::sim
