// Unit tests for the discrete-event kernel: ordering, clock advancement,
// determinism.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace music::sim {
namespace {

TEST(Simulation, StartsAtTimeZeroAndIdle) {
  Simulation s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.idle());
  EXPECT_FALSE(s.step());
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule(300, [&] { order.push_back(3); });
  s.schedule(100, [&] { order.push_back(1); });
  s.schedule(200, [&] { order.push_back(2); });
  s.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300);
}

TEST(Simulation, SameTimeEventsRunInSchedulingOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(50, [&order, i] { order.push_back(i); });
  }
  s.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation s;
  s.schedule(100, [] {});
  s.run_until_idle();
  bool ran = false;
  s.schedule(-50, [&] { ran = true; });
  s.run_until_idle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulation, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulation s;
  s.run_until(5000);
  EXPECT_EQ(s.now(), 5000);
  s.run_for(2500);
  EXPECT_EQ(s.now(), 7500);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation s;
  int ran = 0;
  s.schedule(100, [&] { ++ran; });
  s.schedule(200, [&] { ++ran; });
  s.schedule(300, [&] { ++ran; });
  s.run_until(200);
  EXPECT_EQ(ran, 2);  // t=100 and t=200 inclusive
  EXPECT_EQ(s.now(), 200);
  s.run_until_idle();
  EXPECT_EQ(ran, 3);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule(10, recurse);
  };
  s.schedule(10, recurse);
  s.run_until_idle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 1000);
}

TEST(Simulation, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](uint64_t seed) {
    Simulation s(seed);
    std::vector<int64_t> draws;
    for (int i = 0; i < 32; ++i) draws.push_back(s.rng().uniform_int(0, 1000));
    return draws;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Simulation, CurrentSimulationSetDuringStep) {
  Simulation s;
  EXPECT_EQ(current_simulation(), nullptr);
  Simulation* seen = nullptr;
  s.schedule(1, [&] { seen = current_simulation(); });
  s.run_until_idle();
  EXPECT_EQ(seen, &s);
  EXPECT_EQ(current_simulation(), nullptr);
}

TEST(Simulation, EventCounterAdvances) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.schedule(i, [] {});
  s.run_until_idle();
  EXPECT_EQ(s.events_run(), 5u);
}

}  // namespace
}  // namespace music::sim
