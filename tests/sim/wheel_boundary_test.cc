// Boundary regressions for the timer-wheel / far-heap frontier.
//
// The kernel keeps two event structures per lane: a wheel of kWheelTicks
// one-microsecond buckets for events within [now, now + kWheelTicks), and a
// far heap for everything later.  Off-by-one mistakes at the frontier are
// silent (events still run, just out of order), so these tests pin the
// contract exactly:
//
//  - an event at exactly now + kWheelTicks belongs to the FAR HEAP, and one
//    at now + kWheelTicks - 1 to the wheel, yet both run in timestamp order;
//  - after a large run_until() clock jump the far heap's front can land
//    inside the new wheel window; freshly wheeled events behind it must not
//    overtake it;
//  - the cached next-bucket scan (memoised between next_event_at() and the
//    pop) is invalidated by an earlier enqueue and by clock movement.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <iterator>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace music::sim {
namespace {

constexpr Duration kTicks = static_cast<Duration>(Simulation::kWheelTicks);

TEST(WheelBoundary, EventAtExactlyWheelTicksRunsAfterWheelResidents) {
  Simulation sim(1);
  std::vector<int> order;
  // Scheduled in reverse timestamp order so FIFO insertion can't fake it.
  sim.schedule(kTicks, [&] { order.push_back(3); });      // far heap (== edge)
  sim.schedule(kTicks - 1, [&] { order.push_back(2); });  // last wheel bucket
  sim.schedule(us(0), [&] { order.push_back(1); });       // current bucket
  EXPECT_EQ(sim.pending(), 3u);

  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), kTicks);
  EXPECT_EQ(sim.events_run(), 3u);
}

TEST(WheelBoundary, SameTimestampAcrossFrontierPreservesScheduleOrder) {
  Simulation sim(1);
  // Both targets land at t = kTicks: the first is scheduled while that time
  // is beyond the wheel window (far heap), the second after the clock has
  // moved so the same timestamp is wheel-range.  Tie-break is scheduling
  // order (per-lane seq), not which structure held the event.
  std::vector<int> order;
  sim.schedule(kTicks, [&] { order.push_back(1); });  // far heap at t=0
  sim.schedule(us(1), [&] {
    // now = 1, so t = kTicks is kTicks-1 away: wheel.
    sim.schedule_at(kTicks, [&] { order.push_back(2); });
  });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(WheelBoundary, FarHeapFrontRunsBeforeFreshWheelEventsAfterClockJump) {
  Simulation sim(1);
  std::vector<int> order;
  const Time far = 3 * kTicks;  // well beyond the initial wheel window
  sim.schedule_at(far, [&] { order.push_back(1); });
  sim.schedule_at(far + us(500), [&] { order.push_back(2); });

  // Jump the clock to just below the far events: both are now INSIDE the
  // wheel window [far - 1, far - 1 + kTicks) but still live in the heap.
  sim.run_until(far - 1);
  EXPECT_EQ(sim.now(), far - 1);
  EXPECT_TRUE(order.empty());

  // A freshly scheduled wheel event between the two heap residents must
  // neither run before the heap front nor after the later heap event.
  sim.schedule_at(far + us(100), [&] { order.push_back(3); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(WheelBoundary, PeekThenEarlierEnqueueInvalidatesCachedScan) {
  Simulation sim(1);
  std::vector<int> order;
  sim.schedule(us(100), [&] { order.push_back(100); });
  // peek memoises the next-bucket scan result (tick now+100)...
  EXPECT_EQ(sim.peek_next_event_at(), us(100));
  // ...which must be dropped when an EARLIER wheel event arrives.
  sim.schedule(us(5), [&] { order.push_back(5); });
  EXPECT_EQ(sim.peek_next_event_at(), us(5));
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(order, (std::vector<int>{5}));
  EXPECT_EQ(sim.now(), us(5));
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{5, 100}));
}

TEST(WheelBoundary, CachedScanSurvivesClockMovementAcrossWraps) {
  Simulation sim(1);
  // Repeated peek/run cycles across several wheel wraps: the cache must
  // never serve a stale bucket after the clock (and thus the wheel origin)
  // has moved.  Chained re-scheduling keeps exactly one event live.
  int runs = 0;
  std::function<void()> hop = [&] {
    if (++runs < 64) sim.schedule(kTicks - 7, hop);
  };
  sim.schedule(us(0), hop);
  while (!sim.idle()) {
    Time next = sim.peek_next_event_at();
    ASSERT_NE(next, kTimeNever);
    sim.run_until(next);  // moves the clock, then runs the event at `next`
  }
  EXPECT_EQ(runs, 64);
  EXPECT_EQ(sim.now(), static_cast<Time>(63) * (kTicks - 7));
}

TEST(WheelBoundary, DenseBucketsAroundFrontierKeepTimestampOrder) {
  Simulation sim(1);
  // A spread of events straddling the frontier, scheduled shuffled; the
  // kernel must emit them in (timestamp, schedule-seq) order.
  std::vector<Time> fired;
  const Duration offsets[] = {kTicks + 3, us(1),       kTicks - 1, kTicks,
                              us(0),      kTicks + 1,  us(7),      kTicks - 2,
                              kTicks + 2, kTicks - 1};
  for (Duration d : offsets) {
    sim.schedule(d, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until_idle();
  ASSERT_EQ(fired.size(), std::size(offsets));
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]) << "out of order at index " << i;
  }
  EXPECT_EQ(fired.back(), kTicks + 3);
}

}  // namespace
}  // namespace music::sim
