// Guard-path tests: the acquireLock/criticalPut outcome matrix of §IV
// (NotYetHolder, NotLockHolder, fairness), MSCP mode, and retry semantics.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/session.h"
#include "util/world.h"

namespace music::core {
namespace {

using test::MusicWorld;
using test::WorldOptions;

TEST(Guards, SecondInQueuePollsUntilFirstReleases) {
  MusicWorld w;
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto r1 = co_await c0.create_lock_ref("k");
    auto r2 = co_await c1.create_lock_ref("k");
    CO_ASSERT_TRUE(r1.ok());
    CO_ASSERT_TRUE(r2.ok());
    EXPECT_LT(r1.value(), r2.value());
    co_await c0.acquire_lock_blocking("k", r1.value());
    // c1 polls: not first in the queue.
    auto poll = co_await c1.acquire_lock(/*key=*/"k", r2.value());
    EXPECT_EQ(poll.status(), OpStatus::NotYetHolder);
    // Critical ops with a non-head ref are refused the same way.
    auto put = co_await c1.critical_put("k", r2.value(), Value("x"));
    EXPECT_FALSE(put.ok());
    co_await c0.release_lock("k", r1.value());
    // Now c1 wins the lock.
    auto acq = co_await c1.acquire_lock_blocking("k", r2.value());
    EXPECT_TRUE(acq.ok());
    co_await c1.release_lock("k", r2.value());
  });
  ASSERT_TRUE(ok);
}

TEST(Guards, ReleasedRefIsToldNotLockHolder) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto r1 = co_await c.create_lock_ref("k");
    co_await c.acquire_lock_blocking("k", r1.value());
    co_await c.release_lock("k", r1.value());
    auto r2 = co_await c.create_lock_ref("k");
    co_await c.acquire_lock_blocking("k", r2.value());
    // The released ref is behind the current head: youAreNoLongerLockHolder.
    co_await sim::sleep_for(w.sim, sim::sec(1));  // lock store propagates
    auto put = co_await c.critical_put("k", r1.value(), Value("x"));
    EXPECT_EQ(put.status(), OpStatus::NotLockHolder);
    auto get = co_await c.critical_get("k", r1.value());
    EXPECT_EQ(get.status(), OpStatus::NotLockHolder);
    auto acq = co_await c.acquire_lock("k", r1.value());
    EXPECT_EQ(acq.status(), OpStatus::NotLockHolder);
    co_await c.release_lock("k", r2.value());
  });
  ASSERT_TRUE(ok);
}

TEST(Guards, ReacquireByHolderIsIdempotent) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    auto a1 = co_await c.acquire_lock_blocking("k", ref.value());
    CO_ASSERT_TRUE(a1.ok());
    co_await c.critical_put("k", ref.value(), Value("v1"));
    // acquireLock again with the same ref: still the holder; the section's
    // time origin must not reset (a subsequent put still outranks v1).
    auto a2 = co_await c.acquire_lock_blocking("k", ref.value());
    EXPECT_TRUE(a2.ok());
    auto p = co_await c.critical_put("k", ref.value(), Value("v2"));
    EXPECT_TRUE(p.ok());
    auto g = co_await c.critical_get("k", ref.value());
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().data, "v2");
  });
  ASSERT_TRUE(ok);
}

TEST(Guards, FairnessGrantsInLockRefOrder) {
  // Concurrent createLockRefs can leave orphan refs (an LWT retry whose
  // first proposal was replayed); the failure detector collects orphans at
  // the head (SIV-B), after which grants proceed in lockRef order.
  WorldOptions opt;
  opt.music.holder_timeout = sim::sec(4);
  opt.music.fd_interval = sim::sec(1);
  MusicWorld w(opt);
  w.replica(0).start_failure_detector();
  std::vector<LockRef> grant_order;
  int finished = 0;
  for (int i = 0; i < 3; ++i) {
    sim::spawn(w.sim, [](MusicWorld& world, int ci, std::vector<LockRef>& order,
                         int& fin) -> sim::Task<void> {
      auto& c = world.client(static_cast<size_t>(ci));
      auto ref = co_await c.create_lock_ref("k");
      if (ref.ok()) {
        auto acq = co_await c.acquire_lock_blocking("k", ref.value());
        if (acq.ok()) {
          order.push_back(ref.value());
          co_await c.critical_put("k", ref.value(), Value("v"));
          co_await c.release_lock("k", ref.value());
        }
      }
      ++fin;
    }(w, i, grant_order, finished));
  }
  w.sim.run_until(sim::sec(300));
  ASSERT_EQ(finished, 3);
  ASSERT_EQ(grant_order.size(), 3u);
  EXPECT_TRUE(std::is_sorted(grant_order.begin(), grant_order.end()))
      << "locks must be granted fairly, in lockRef (request) order";
}

TEST(Mscp, ProvidesTheSameSemanticsViaLwtPuts) {
  WorldOptions opt;
  opt.music.put_mode = PutMode::Lwt;  // MSCP
  MusicWorld w(opt);
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto body = [&](LockRef ref) -> sim::Task<Status> {
      auto g0 = co_await c.critical_get("k", ref);
      EXPECT_EQ(g0.status(), OpStatus::NotFound);
      auto p = co_await c.critical_put("k", ref, Value("mscp"));
      EXPECT_TRUE(p.ok());
      auto g1 = co_await c.critical_get("k", ref);
      EXPECT_TRUE(g1.ok());
      if (g1.ok()) {
        EXPECT_EQ(g1.value().data, "mscp");
      }
      co_return Status::Ok();
    };
    auto st = co_await c.with_lock("k", body);
    EXPECT_TRUE(st.ok());
  });
  ASSERT_TRUE(ok);
}

TEST(Mscp, CriticalPutCostsFourRoundTripsVsOneForMusic) {
  // The heart of Fig. 5(b): MSCP's put is an LWT ('P') at ~4 RTTs; MUSIC's
  // is a quorum write ('Q') at ~1 RTT.
  auto measure = [](PutMode mode) {
    WorldOptions opt;
    opt.music.put_mode = mode;
    MusicWorld w(opt);
    auto& c = w.client(0);
    sim::Time cost = 0;
    bool ok = w.runner.run([&]() -> sim::Task<void> {
      auto ref = co_await c.create_lock_ref("k");
      co_await c.acquire_lock_blocking("k", ref.value());
      sim::Time t0 = w.sim.now();
      co_await c.critical_put("k", ref.value(), Value("v"));
      cost = w.sim.now() - t0;
    });
    EXPECT_TRUE(ok);
    return cost;
  };
  sim::Time music_put = measure(PutMode::Quorum);
  sim::Time mscp_put = measure(PutMode::Lwt);
  EXPECT_GT(mscp_put, 3 * music_put);
  EXPECT_LT(music_put, sim::ms(90));
  EXPECT_GT(mscp_put, sim::ms(180));
}

TEST(Retries, ClientSurvivesTransientBackendOutage) {
  MusicWorld w;
  auto& c = w.client(0);
  // Take a store node down briefly mid-run; the client's retry discipline
  // (SIII: "retry ... until the operation succeeds") rides it out.
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    co_await c.acquire_lock_blocking("k", ref.value());
    w.store.replica(1).set_down(true);
    w.store.replica(2).set_down(true);  // no quorum now
    w.sim.schedule(sim::sec(4), [&] { w.store.replica(1).set_down(false); });
    auto p = co_await c.critical_put("k", ref.value(), Value("v"));
    EXPECT_TRUE(p.ok());  // succeeded after the node returned
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

TEST(Stats, CountersTrackOperations) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto body = [&](LockRef ref) -> sim::Task<Status> {
      co_await c.critical_put("k", ref, Value("a"));
      co_await c.critical_put("k", ref, Value("b"));
      auto g = co_await c.critical_get("k", ref);
      (void)g;
      co_return Status::Ok();
    };
    co_await c.with_lock("k", body);
  });
  ASSERT_TRUE(ok);
  const auto& st = w.replica(0).stats();
  EXPECT_EQ(st.create_lock_ref, 1u);
  EXPECT_EQ(st.acquire_granted, 1u);
  EXPECT_EQ(st.critical_puts, 2u);
  EXPECT_EQ(st.critical_gets, 1u);
  EXPECT_EQ(st.releases, 1u);
}

}  // namespace
}  // namespace music::core
