// The batched Session path under randomized §III failure injection, held to
// the same ECF oracle as the unbatched client (tests/music/ecf_property_
// test.cc): forced releases land mid-batch, store replicas crash, sites
// partition — and the Exclusivity / Latest-State invariants must still
// hold over the per-op batch results.  CheckedClient::flush reports every
// queued put as attempted before the batch ships and acks/reads from the
// aligned results, so a preempted tail shows up as pending-never-acked
// attempts, exactly like a client that crashed mid-put.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "util/world.h"
#include "verify/oracle.h"

namespace music::verify {
namespace {

using test::MusicWorld;
using test::WorldOptions;

constexpr int kKeys = 2;
constexpr int kClients = 4;

Key key_of(int i) { return "bk" + std::to_string(i); }

/// One client's life: repeatedly run critical sections whose entire body is
/// one batched flush (puts and gets on the held key), with occasional
/// crash-style abandonment.
sim::Task<void> batch_client_life(MusicWorld& w, CheckedClient c, int id,
                                  sim::Time end, uint64_t seed) {
  sim::Rng rng(seed);
  while (w.sim.now() < end) {
    Key key = key_of(static_cast<int>(rng.next_u64() % kKeys));
    auto ref = co_await c.create_lock_ref(key);
    if (!ref.ok()) continue;
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    if (!acq.ok()) {
      co_await c.inner().remove_lock_ref(key, ref.value());
      continue;
    }
    core::Session s(c.inner(), key, ref.value());
    int ops = static_cast<int>(1 + rng.next_u64() % 4);
    for (int i = 0; i < ops; ++i) {
      if (rng.chance(0.4)) {
        s.get();
      } else {
        // Built stepwise: GCC 12 mis-fires -Werror=restrict on
        // literal + to_string rvalue concats inside coroutine frames.
        std::string val = "b";
        val += std::to_string(id);
        val += "-";
        val += std::to_string(w.sim.now());
        val += "-";
        val += std::to_string(i);
        s.put(Value(val));
      }
    }
    auto st = co_await c.flush(s);
    (void)st;  // a NotLockHolder tail is legal under preemption
    if (!rng.chance(0.1)) {
      co_await c.release_lock(key, ref.value());
    }
    co_await sim::sleep_for(w.sim, rng.uniform_int(0, sim::ms(200)));
  }
}

/// Chaos: forced releases of live holders (these are what land mid-batch),
/// brief store-replica crashes and single-site partitions.
sim::Task<void> chaos_life(MusicWorld& w, CheckedClient c, sim::Time end,
                           uint64_t seed) {
  sim::Rng rng(seed);
  while (w.sim.now() < end) {
    co_await sim::sleep_for(w.sim, rng.uniform_int(sim::sec(1), sim::sec(4)));
    double dice = rng.uniform_real(0, 1);
    if (dice < 0.6) {
      Key key = key_of(static_cast<int>(rng.next_u64() % kKeys));
      auto peek = co_await w.locks.peek_quorum(
          w.store.replica_at_site(static_cast<int>(rng.next_u64() % 3)), key);
      if (peek.ok() && peek.value().head.has_value()) {
        co_await c.forced_release(key, *peek.value().head);
      }
    } else if (dice < 0.8) {
      int victim = static_cast<int>(
          rng.next_u64() % static_cast<uint64_t>(w.store.num_replicas()));
      w.store.replica(victim).set_down(true);
      co_await sim::sleep_for(w.sim,
                              rng.uniform_int(sim::ms(500), sim::sec(2)));
      w.store.replica(victim).set_down(false);
    } else {
      int site = static_cast<int>(rng.next_u64() % 3);
      w.net.partition_sites({site}, {(site + 1) % 3, (site + 2) % 3});
      co_await sim::sleep_for(w.sim,
                              rng.uniform_int(sim::ms(500), sim::sec(2)));
      w.net.heal_partition();
    }
  }
}

class BatchEcfProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchEcfProperty, BatchedSectionsHoldEcfUnderForcedReleases) {
  WorldOptions opt;
  opt.seed = GetParam();
  opt.clients_per_site = 2;  // 6 clients: 4 workers + 1 chaos
  MusicWorld w(opt);
  EcfChecker checker(w.sim);
  checker.set_lenient_stale_grants(true);

  sim::Time end = sim::sec(75);
  for (int i = 0; i < kClients; ++i) {
    sim::spawn(w.sim,
               batch_client_life(
                   w, CheckedClient(w.client(static_cast<size_t>(i)), checker),
                   i, end, opt.seed * 1000 + static_cast<uint64_t>(i)));
  }
  sim::spawn(w.sim, chaos_life(w, CheckedClient(w.client(4), checker), end,
                               opt.seed * 7777));
  w.sim.run_until(end + sim::sec(120));

  EXPECT_TRUE(checker.ok()) << checker.report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEcfProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace music::verify
