// MUSIC failure semantics (§III, §IV-B): forced release, synchronization,
// false failure detection, orphan lockRefs, the failure detector, replica
// failover, the T bound.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/session.h"
#include "util/world.h"
#include "verify/oracle.h"

namespace music::core {
namespace {

using test::MusicWorld;
using test::WorldOptions;

TEST(ForcedRelease, NextHolderSeesACommittedTrueValue) {
  MusicWorld w;
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // c0 acquires and writes, then "dies" without releasing.
    auto ref = co_await c0.create_lock_ref("j");
    co_await c0.acquire_lock_blocking("j", ref.value());
    auto put = co_await c0.critical_put("j", ref.value(), Value("important"));
    CO_ASSERT_TRUE(put.ok());
    // Another replica preempts the lock.
    auto fr = co_await c1.forced_release("j", ref.value());
    CO_ASSERT_TRUE(fr.ok());
    // c1's fresh critical section reads the true value.
    auto body = [&](LockRef r2) -> sim::Task<Status> {
      auto g = co_await c1.critical_get("j", r2);
      EXPECT_TRUE(g.ok());
      if (g.ok()) {
        EXPECT_EQ(g.value().data, "important");
      }
      co_return Status::Ok();
    };
    auto st = co_await c1.with_lock("j", body);
    EXPECT_TRUE(st.ok());
  });
  ASSERT_TRUE(ok);
  uint64_t syncs = 0;
  for (int i = 0; i < 3; ++i) syncs += w.replica(i).stats().synchronizations;
  EXPECT_GE(syncs, 1u);  // the next acquire synchronized the data store
}

TEST(ForcedRelease, PreemptedClientsLaterWritesCannotChangeTheTruth) {
  MusicWorld w;
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c0.create_lock_ref("j");
    co_await c0.acquire_lock_blocking("j", ref.value());
    co_await c0.critical_put("j", ref.value(), Value("v1"));
    co_await c1.forced_release("j", ref.value());
    // A new holder enters and writes.
    auto body = [&](LockRef r2) -> sim::Task<Status> {
      co_return co_await c1.critical_put("j", r2, Value("v2"));
    };
    co_await c1.with_lock("j", body);
    // The preempted client keeps trying (false failure detection): either
    // it is told it lost the lock, or its write is a timestamp loser.
    auto late = co_await c0.critical_put("j", ref.value(), Value("zombie"));
    (void)late;
    auto v = co_await w.replica(2).get_quorum_unlocked("j");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().data, "v2");
    // And once its local lock store catches up, it is refused: either
    // explicitly (a later head is visible: youAreNoLongerLockHolder) or as
    // not-first (the queue emptied after the new holder released — a local
    // peek cannot tell the two apart, and both refuse the write).
    co_await sim::sleep_for(w.sim, sim::sec(2));
    auto later = co_await c0.critical_put("j", ref.value(), Value("zombie2"));
    EXPECT_TRUE(later.status() == OpStatus::NotLockHolder ||
                later.status() == OpStatus::NotYetHolder);
    auto v2 = co_await w.replica(2).get_quorum_unlocked("j");
    CO_ASSERT_TRUE(v2.ok());
    EXPECT_EQ(v2.value().data, "v2");
  });
  ASSERT_TRUE(ok);
}

TEST(ForcedRelease, SynchFlagRaceResolvedByDelta) {
  // forcedRelease(r) and the next holder's flag reset race via timestamps:
  // with the production delta=1us the forced set (at lockRef r) always
  // loses to the NEXT holder's reset (at lockRef r+1) and always beats
  // holder r's own writes.  Verified at the store level.
  MusicWorld w;
  auto& c0 = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c0.create_lock_ref("k");
    co_await c0.acquire_lock_blocking("k", ref.value());
    co_await c0.critical_put("k", ref.value(), Value("x"));
    co_await c0.forced_release("k", ref.value());
    // synchFlag must now read true at quorum.
    auto sf = co_await w.replica(0).get_quorum_unlocked("!internal");
    (void)sf;  // (flag key is internal; check through a new acquire below)
    // The next holder synchronizes and resets the flag.
    auto body = [&](LockRef r2) -> sim::Task<Status> {
      co_return co_await c0.critical_put("k", r2, Value("y"));
    };
    co_await c0.with_lock("k", body);
    // After the reset, a further acquire does NOT synchronize again.
    uint64_t syncs_before = 0;
    for (int i = 0; i < 3; ++i) {
      syncs_before += w.replicas[static_cast<size_t>(i)]->stats().synchronizations;
    }
    auto body2 = [&](LockRef r3) -> sim::Task<Status> {
      co_return co_await c0.critical_put("k", r3, Value("z"));
    };
    co_await c0.with_lock("k", body2);
    uint64_t syncs_after = 0;
    for (int i = 0; i < 3; ++i) {
      syncs_after += w.replicas[static_cast<size_t>(i)]->stats().synchronizations;
    }
    EXPECT_EQ(syncs_before, syncs_after);  // flag was reset; no extra sync
  });
  ASSERT_TRUE(ok);
}

TEST(ForcedRelease, OfAlreadyReleasedLockOnlyCausesSpuriousSync) {
  // §IV-B: "the synchFlag might be erroneously true, but the only
  // consequence ... is that the next acquireLock will synchronize the data
  // store when it is not necessary."
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    co_await c.acquire_lock_blocking("k", ref.value());
    co_await c.critical_put("k", ref.value(), Value("v"));
    co_await c.release_lock("k", ref.value());
    // Stale forcedRelease on the long-gone ref.
    co_await c.forced_release("k", ref.value());
    // Correctness is unaffected.
    auto body = [&](LockRef r2) -> sim::Task<Status> {
      auto g = co_await c.critical_get("k", r2);
      EXPECT_TRUE(g.ok());
      if (g.ok()) {
        EXPECT_EQ(g.value().data, "v");
      }
      co_return Status::Ok();
    };
    auto st = co_await c.with_lock("k", body);
    EXPECT_TRUE(st.ok());
  });
  ASSERT_TRUE(ok);
}

TEST(FailureDetector, PreemptsDeadLockholder) {
  // Granted holders are preempted via the T bound (the startTime column);
  // use a small T so the dead holder is detected quickly.
  WorldOptions opt;
  opt.music.t_max_cs = sim::sec(6);
  opt.music.holder_timeout = sim::sec(8);
  opt.music.fd_interval = sim::sec(1);
  MusicWorld w(opt);
  w.replica(1).start_failure_detector();
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c0.create_lock_ref("job");
    co_await c0.acquire_lock_blocking("job", ref.value());
    co_await c0.critical_put("job", ref.value(), Value("half-done"));
    // Make the detector's replica aware of the key, then let c0 "die".
    w.replica(1).watch_key("job");
    // Another client eventually gets the lock (after FD preemption) and
    // resumes from the latest state.
    auto body = [&](LockRef r2) -> sim::Task<Status> {
      auto g = co_await c1.critical_get("job", r2);
      EXPECT_TRUE(g.ok());
      if (g.ok()) {
        EXPECT_EQ(g.value().data, "half-done");
      }
      co_return co_await c1.critical_put("job", r2, Value("done"));
    };
    auto st = co_await c1.with_lock("job", body);
    EXPECT_TRUE(st.ok());
  }, sim::sec(120));
  ASSERT_TRUE(ok);
  EXPECT_GE(w.replica(1).stats().forced_releases, 1u);
}

TEST(FailureDetector, CollectsOrphanLockRefs) {
  // §IV-B: a client createLockRefs then dies before acquiring; the orphan
  // ref reaching the head is removed by forcedRelease.
  WorldOptions opt;
  opt.music.holder_timeout = sim::sec(5);
  opt.music.fd_interval = sim::sec(1);
  MusicWorld w(opt);
  w.replica(0).start_failure_detector();
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto orphan = co_await c0.create_lock_ref("k");
    CO_ASSERT_TRUE(orphan.ok());
    // c0 dies.  c1 wants the lock; it queues behind the orphan and must
    // eventually be granted.
    auto body = [&](LockRef r) -> sim::Task<Status> {
      co_return co_await c1.critical_put("k", r, Value("v"));
    };
    auto st = co_await c1.with_lock("k", body);
    EXPECT_TRUE(st.ok());
  }, sim::sec(120));
  ASSERT_TRUE(ok);
}

TEST(TBound, ExpiredCriticalSectionRejectsOps) {
  WorldOptions opt;
  opt.music.t_max_cs = sim::sec(5);
  MusicWorld w(opt);
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    co_await c.acquire_lock_blocking("k", ref.value());
    auto p1 = co_await c.critical_put("k", ref.value(), Value("in-time"));
    EXPECT_TRUE(p1.ok());
    co_await sim::sleep_for(w.sim, sim::sec(6));  // blow through T
    auto p2 = co_await c.critical_put("k", ref.value(), Value("late"));
    EXPECT_EQ(p2.status(), OpStatus::CsExpired);
    auto g = co_await c.critical_get("k", ref.value());
    EXPECT_EQ(g.status(), OpStatus::CsExpired);
  });
  ASSERT_TRUE(ok);
}

TEST(Failover, ClientRetriesAtAnotherMusicReplica) {
  MusicWorld w;
  auto& c = w.client(0);  // prefers replica 0
  w.replica(0).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto body = [&](LockRef ref) -> sim::Task<Status> {
      co_return co_await c.critical_put("k", ref, Value("v"));
    };
    auto st = co_await c.with_lock("k", body);
    EXPECT_TRUE(st.ok());
  }, sim::sec(300));
  ASSERT_TRUE(ok);
  EXPECT_EQ(w.replica(0).stats().critical_puts, 0u);
}

TEST(Failover, StoreReplicaCrashMidSectionIsSurvivable) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    co_await c.acquire_lock_blocking("k", ref.value());
    co_await c.critical_put("k", ref.value(), Value("v1"));
    // One backend store node dies: quorum ops still work.
    w.store.replica(2).set_down(true);
    auto p = co_await c.critical_put("k", ref.value(), Value("v2"));
    EXPECT_TRUE(p.ok());
    auto g = co_await c.critical_get("k", ref.value());
    EXPECT_TRUE(g.ok());
    if (g.ok()) {
      EXPECT_EQ(g.value().data, "v2");
    }
    co_await c.release_lock("k", ref.value());
  }, sim::sec(300));
  ASSERT_TRUE(ok);
}

TEST(Partition, MinoritySideClientIsToldNothingFalse) {
  // A client partitioned with only its local site cannot make progress
  // (quorum unreachable) but must not observe success.  T is raised so the
  // critical section survives the ~90s the client spends retrying into the
  // partition (with the default T=60s it would correctly expire instead).
  WorldOptions opt;
  opt.music.t_max_cs = sim::sec(600);
  MusicWorld w(opt);
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    CO_ASSERT_TRUE(ref.ok());
    co_await c.acquire_lock_blocking("k", ref.value());
    w.net.partition_sites({0}, {1, 2});
    auto p = co_await c.critical_put("k", ref.value(), Value("ghost"));
    EXPECT_FALSE(p.ok());
    w.net.heal_partition();
    auto p2 = co_await c.critical_put("k", ref.value(), Value("real"));
    EXPECT_TRUE(p2.ok());
    auto g = co_await c.critical_get("k", ref.value());
    EXPECT_TRUE(g.ok());
    if (g.ok()) {
      EXPECT_EQ(g.value().data, "real");
    }
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

TEST(DataStoreDefined, HoldsWhileHolderIsQuiescent) {
  // The paper's Critical-Section Invariant, checked at the store level:
  // while the holder is in Critical state (not mid-put), the data store is
  // defined as the true value.
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    co_await c.acquire_lock_blocking("k", ref.value());
    co_await c.critical_put("k", ref.value(), Value("truth"));
    co_await sim::sleep_for(w.sim, sim::ms(500));  // settle in Critical state
    auto defined = verify::data_store_defined(w.store, "k");
    EXPECT_TRUE(defined.defined);
    if (defined.value) {
      EXPECT_EQ(defined.value->data, "truth");
    }
    co_await c.release_lock("k", ref.value());
  });
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::core
