// Multi-key critical section tests (§III-A's extension): lexicographic
// acquisition, all-or-nothing, deadlock freedom under inverse orders.
#include "core/multikey.h"

#include "core/session.h"

#include <gtest/gtest.h>

#include "util/world.h"

namespace music::core {
namespace {

using test::MusicWorld;

TEST(MultiKey, AcquiresOperatesReleases) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    MultiKeySection cs(c, {"b", "a", "c", "a"});  // unsorted + duplicate
    EXPECT_EQ(cs.keys(), (std::vector<Key>{"a", "b", "c"}));
    auto st = co_await cs.acquire_all();
    CO_ASSERT_TRUE(st.ok());
    EXPECT_TRUE(cs.held());
    co_await cs.put("a", Value("1"));
    co_await cs.put("b", Value("2"));
    auto ga = co_await cs.get("a");
    CO_ASSERT_TRUE(ga.ok());
    EXPECT_EQ(ga.value().data, "1");
    auto gc = co_await cs.get("c");
    EXPECT_EQ(gc.status(), OpStatus::NotFound);  // never written
    auto rel = co_await cs.release_all();
    EXPECT_TRUE(rel.ok());
    EXPECT_FALSE(cs.held());
  });
  ASSERT_TRUE(ok);
}

TEST(MultiKey, OpsOutsideTheSetAreRefused) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    MultiKeySection cs(c, {"x"});
    co_await cs.acquire_all();
    auto st = co_await cs.put("not-mine", Value("v"));
    EXPECT_EQ(st.status(), OpStatus::NotLockHolder);
    auto g = co_await cs.get("not-mine");
    EXPECT_EQ(g.status(), OpStatus::NotLockHolder);
    co_await cs.release_all();
  });
  ASSERT_TRUE(ok);
}

TEST(MultiKey, OpsBeforeAcquireAreRefused) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    MultiKeySection cs(c, {"x"});
    auto st = co_await cs.put("x", Value("v"));
    EXPECT_EQ(st.status(), OpStatus::NotLockHolder);
    co_return;
  });
  ASSERT_TRUE(ok);
}

TEST(MultiKey, InverseOrdersDoNotDeadlock) {
  // Two sections over the same keys given in opposite orders: the
  // lexicographic rule serializes them instead of deadlocking.
  MusicWorld w;
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    sim::spawn(w.sim, [](MusicWorld& world, int ci, int& d) -> sim::Task<void> {
      auto& c = world.client(static_cast<size_t>(ci));
      std::vector<Key> keys = ci == 0 ? std::vector<Key>{"p", "q"}
                                      : std::vector<Key>{"q", "p"};
      MultiKeySection cs(c, keys);
      auto st = co_await cs.acquire_all();
      EXPECT_TRUE(st.ok());
      // Read-modify-write across both keys atomically.
      auto gp = co_await cs.get("p");
      int v = gp.ok() ? std::stoi(gp.value().data) : 0;
      co_await cs.put("p", Value(std::to_string(v + 1)));
      co_await cs.put("q", Value(std::to_string(v + 1)));
      co_await cs.release_all();
      ++d;
    }(w, i, done));
  }
  w.sim.run_until(sim::sec(300));
  ASSERT_EQ(done, 2);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto p = co_await w.replica(0).get_quorum_unlocked("p");
    auto q = co_await w.replica(0).get_quorum_unlocked("q");
    CO_ASSERT_TRUE(p.ok());
    CO_ASSERT_TRUE(q.ok());
    EXPECT_EQ(p.value().data, "2");
    EXPECT_EQ(q.value().data, p.value().data);  // both sections fully applied
  });
  ASSERT_TRUE(ok);
}

TEST(MultiKey, CrossKeyAtomicityObservedByNextSection) {
  MusicWorld w;
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    {
      MultiKeySection cs(c0, {"acct-a", "acct-b"});
      co_await cs.acquire_all();
      co_await cs.put("acct-a", Value("50"));
      co_await cs.put("acct-b", Value("150"));
      co_await cs.release_all();
    }
    // A later multi-key section sees BOTH latest values (latest-state per
    // key, lock-serialized across sections).
    MultiKeySection cs2(c1, {"acct-a", "acct-b"});
    co_await cs2.acquire_all();
    auto a = co_await cs2.get("acct-a");
    auto b = co_await cs2.get("acct-b");
    CO_ASSERT_TRUE(a.ok());
    CO_ASSERT_TRUE(b.ok());
    EXPECT_EQ(std::stoi(a.value().data) + std::stoi(b.value().data), 200);
    co_await cs2.release_all();
  });
  ASSERT_TRUE(ok);
}

TEST(MultiKey, ReleaseAfterFailedAcquireLeavesNoResidue) {
  MusicWorld w;
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // c0 wedges "k2" by holding it.
    auto ref = co_await c0.create_lock_ref("k2");
    co_await c0.acquire_lock_blocking("k2", ref.value());
    // c1's multi-acquire over {k1, k2} stalls on k2 and gives up (the poll
    // budget is finite); k1 must be rolled back so others can use it.
    MultiKeySection cs(c1, {"k1", "k2"});
    auto st = co_await cs.acquire_all();
    EXPECT_FALSE(st.ok());
    EXPECT_FALSE(cs.held());
    // k1 is free again.
    auto body = [&](LockRef r) -> sim::Task<Status> {
      co_return co_await c0.critical_put("k1", r, Value("free"));
    };
    auto s2 = co_await c0.with_lock("k1", body);
    EXPECT_TRUE(s2.ok());
    co_await c0.release_lock("k2", ref.value());
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::core
