// The pipelined client API: CriticalSection handle lifecycle and Session
// batching semantics, including the PR's headline property — N independent-
// key criticalPuts cost ONE value-quorum WAN round trip when flushed as a
// batch, vs N sequential rounds unbatched (asserted off the metrics
// registry the tracer feeds).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/client.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/world.h"

namespace music::core {
namespace {

using test::MusicWorld;
using test::WorldOptions;

TEST(CriticalSection, LifecyclePutGetExit) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    CriticalSection cs(c, "k");
    CO_ASSERT_FALSE(cs.held());
    auto acq = co_await cs.enter();
    CO_ASSERT_TRUE(acq.ok());
    CO_ASSERT_TRUE(cs.held());
    CO_ASSERT_TRUE((co_await cs.put(Value("v1"))).ok());
    auto g = co_await cs.get();
    CO_ASSERT_TRUE(g.ok());
    CO_ASSERT_EQ(g.value().data, "v1");
    CO_ASSERT_TRUE((co_await cs.exit()).ok());
    CO_ASSERT_FALSE(cs.held());
    // The handle is reusable: enter again under a fresh lockRef.
    CO_ASSERT_TRUE((co_await cs.enter()).ok());
    CO_ASSERT_TRUE((co_await cs.exit()).ok());
  });
  EXPECT_TRUE(ok);
}

// Dropping a held handle releases the lock in the background: a second
// client's acquire must be granted without waiting for the failure
// detector's holder timeout.
TEST(CriticalSection, DestructorReleasesDetached) {
  MusicWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    {
      CriticalSection cs(w.client(0), "k");
      CO_ASSERT_TRUE((co_await cs.enter()).ok());
    }  // no exit(): the destructor spawns the release
    CriticalSection cs2(w.client(1), "k");
    CO_ASSERT_TRUE((co_await cs2.enter()).ok());
    CO_ASSERT_TRUE((co_await cs2.exit()).ok());
  }, sim::sec(30));  // well under any holder-timeout path
  EXPECT_TRUE(ok);
}

// The acceptance property: 8 independent-key criticalPuts in one Session
// flush cost exactly 1 value-quorum WAN round trip; the same 8 puts issued
// sequentially cost 8.  Both sides are read off the MetricsRegistry that
// the tracer rolls span RTTs into.
TEST(Session, EightIndependentPutsCostOneQuorumRoundTrip) {
  uint64_t batched = 0, unbatched = 0;
  {
    WorldOptions opt;
    opt.net.jitter_frac = 0.0;
    MusicWorld w(opt);
    obs::Tracer tracer;
    obs::MetricsRegistry reg;
    tracer.set_registry(&reg);
    w.sim.set_tracer(&tracer);
    auto& c = w.client(0);
    bool ok = w.runner.run([&]() -> sim::Task<void> {
      CriticalSection cs(c, "k");
      CO_ASSERT_TRUE((co_await cs.enter()).ok());
      Session s = cs.session();
      for (int i = 0; i < 8; ++i) {
        // Built stepwise: GCC 12 mis-fires -Werror=restrict on
        // literal + to_string rvalue concats inside coroutine frames.
        std::string sub = "k/";
        sub += std::to_string(i);
        std::string val = "v";
        val += std::to_string(i);
        s.put(sub, Value(val));
      }
      auto st = co_await s.flush();
      CO_ASSERT_TRUE(st.ok());
      CO_ASSERT_EQ(s.results().size(), 8u);
      for (const auto& r : s.results()) CO_ASSERT_EQ(r.status, OpStatus::Ok);
      // The writes really landed: read one back through a second batch.
      Session s2 = cs.session();
      s2.get("k/3");
      CO_ASSERT_TRUE((co_await s2.flush()).ok());
      CO_ASSERT_EQ(s2.results().at(0).value.data, "v3");
      CO_ASSERT_TRUE((co_await cs.exit()).ok());
    });
    ASSERT_TRUE(ok);
    w.sim.set_tracer(nullptr);
    ASSERT_EQ(reg.counters().count("span.client.batch.rtts"), 1u);
    // Two flushes were traced: the 8-put batch and the 1-get batch, one
    // quorum round trip each.
    batched = reg.counters().at("span.client.batch.rtts").value;
    EXPECT_EQ(batched, 2u);
  }
  {
    WorldOptions opt;
    opt.net.jitter_frac = 0.0;
    MusicWorld w(opt);
    obs::Tracer tracer;
    obs::MetricsRegistry reg;
    tracer.set_registry(&reg);
    w.sim.set_tracer(&tracer);
    auto& c = w.client(0);
    bool ok = w.runner.run([&]() -> sim::Task<void> {
      CriticalSection cs(c, "k");
      CO_ASSERT_TRUE((co_await cs.enter()).ok());
      for (int i = 0; i < 8; ++i) {
        CO_ASSERT_TRUE((co_await cs.put(Value("v"))).ok());
      }
      CO_ASSERT_TRUE((co_await cs.exit()).ok());
    });
    ASSERT_TRUE(ok);
    w.sim.set_tracer(nullptr);
    unbatched = reg.counters().at("span.client.critical_put.rtts").value;
    EXPECT_EQ(unbatched, 8u);
  }
  EXPECT_LT(batched, unbatched);
}

// Program order is preserved across mixed rounds: a read after a write on
// the same key observes that write, within one batch.
TEST(Session, MixedRoundsPreserveProgramOrder) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    CriticalSection cs(c, "k");
    CO_ASSERT_TRUE((co_await cs.enter()).ok());
    Session s = cs.session();
    s.put(Value("a"));
    s.get();
    s.put(Value("b"));
    s.get();
    CO_ASSERT_TRUE((co_await s.flush()).ok());
    const auto& rs = s.results();
    CO_ASSERT_EQ(rs.size(), 4u);
    CO_ASSERT_EQ(rs[0].status, OpStatus::Ok);
    CO_ASSERT_EQ(rs[1].value.data, "a");
    CO_ASSERT_EQ(rs[2].status, OpStatus::Ok);
    CO_ASSERT_EQ(rs[3].value.data, "b");
    CO_ASSERT_TRUE((co_await cs.exit()).ok());
  });
  EXPECT_TRUE(ok);
}

// In MSCP/Lwt mode every batched put still runs a full LWT (4 RTTs): the
// batch saves wire requests but cannot coalesce conditional updates.
TEST(Session, LwtModeBatchPays4RttsPerPut) {
  WorldOptions opt;
  opt.net.jitter_frac = 0.0;
  opt.music.put_mode = PutMode::Lwt;
  MusicWorld w(opt);
  obs::Tracer tracer;
  obs::MetricsRegistry reg;
  tracer.set_registry(&reg);
  w.sim.set_tracer(&tracer);
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    CriticalSection cs(c, "k");
    CO_ASSERT_TRUE((co_await cs.enter()).ok());
    Session s = cs.session();
    s.put("k/0", Value("v"));
    s.put("k/1", Value("v"));
    CO_ASSERT_TRUE((co_await s.flush()).ok());
    CO_ASSERT_TRUE((co_await cs.exit()).ok());
  });
  ASSERT_TRUE(ok);
  w.sim.set_tracer(nullptr);
  EXPECT_EQ(reg.counters().at("span.client.batch.rtts").value, 8u);
}

TEST(Session, EmptyFlushIsNoOpAndSessionIsReusable) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    CriticalSection cs(c, "k");
    CO_ASSERT_TRUE((co_await cs.enter()).ok());
    Session s = cs.session();
    CO_ASSERT_EQ(s.pending(), 0u);
    CO_ASSERT_TRUE((co_await s.flush()).ok());  // nothing queued: Ok
    s.put(Value("x"));
    CO_ASSERT_EQ(s.pending(), 1u);
    CO_ASSERT_TRUE((co_await s.flush()).ok());
    CO_ASSERT_EQ(s.pending(), 0u);
    // Enqueueing after a flush starts a fresh batch.
    s.get();
    CO_ASSERT_EQ(s.pending(), 1u);
    CO_ASSERT_TRUE((co_await s.flush()).ok());
    CO_ASSERT_EQ(s.results().size(), 1u);
    CO_ASSERT_EQ(s.results().at(0).value.data, "x");
    CO_ASSERT_TRUE((co_await cs.exit()).ok());
  });
  EXPECT_TRUE(ok);
}

// A forcedRelease that lands while a batch is mid-flight: the rounds that
// executed before the preemption succeed, every later op fails with
// NotLockHolder, and the transition is monotone (Ok-prefix, failed-tail) —
// the replica aborts deterministically at the first round that sees a
// superseded lockRef.
TEST(Session, ForcedReleaseMidBatchFailsTheTail) {
  WorldOptions opt;
  opt.net.jitter_frac = 0.0;
  MusicWorld w(opt);
  constexpr int kPuts = 12;
  std::vector<BatchOpResult> rs;
  bool flushed = false;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto& a = w.client(0);
    auto& b = w.client(1);
    CriticalSection cs(a, "k");
    CO_ASSERT_TRUE((co_await cs.enter()).ok());
    // Enqueue a waiter so the forced release advances the head PAST a's
    // ref (a becomes superseded, not merely re-checkable).
    auto refb = co_await b.create_lock_ref("k");
    CO_ASSERT_TRUE(refb.ok());
    // Preempt a mid-batch: same-key puts execute as one round each, so a
    // forced release launched now lands while later rounds are in flight.
    sim::spawn(w.sim, [](MusicWorld& world, CriticalSection& held,
                         core::MusicClient& by) -> sim::Task<void> {
      co_await sim::sleep_for(world.sim, sim::ms(120));
      co_await by.forced_release("k", held.ref());
    }(w, cs, b));
    Session s = cs.session();
    for (int i = 0; i < kPuts; ++i) {
      std::string val = "w";
      val += std::to_string(i);
      s.put(Value(val));
    }
    auto st = co_await s.flush();
    rs = s.results();
    flushed = true;
    CO_ASSERT_EQ(st.status(), OpStatus::NotLockHolder);
    co_await cs.exit();  // releasing a superseded ref is a safe no-op
  });
  ASSERT_TRUE(ok);
  ASSERT_TRUE(flushed);
  ASSERT_EQ(rs.size(), static_cast<size_t>(kPuts));
  size_t first_fail = rs.size();
  for (size_t i = 0; i < rs.size(); ++i) {
    if (rs[i].status != OpStatus::Ok) {
      first_fail = i;
      break;
    }
  }
  ASSERT_LT(first_fail, rs.size()) << "forced release never landed";
  EXPECT_GT(first_fail, 0u) << "no round completed before the preemption";
  for (size_t i = first_fail; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].status, OpStatus::NotLockHolder) << "op " << i;
  }
}

// with_lock is now sugar over CriticalSection; its contract is unchanged.
TEST(WithLock, RunsBodyAndReleases) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto body = [&](LockRef ref) -> sim::Task<Status> {
      co_return co_await c.critical_put("k", ref, Value("via-with-lock"));
    };
    auto st = co_await c.with_lock("k", body);
    CO_ASSERT_TRUE(st.ok());
    // Lock is free again and the write is visible.
    CriticalSection cs(c, "k");
    CO_ASSERT_TRUE((co_await cs.enter()).ok());
    auto g = co_await cs.get();
    CO_ASSERT_TRUE(g.ok());
    CO_ASSERT_EQ(g.value().data, "via-with-lock");
    CO_ASSERT_TRUE((co_await cs.exit()).ok());
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace music::core
