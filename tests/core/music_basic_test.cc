// MUSIC core semantics in failure-free scenarios: Listing 1, Table I
// operations, non-ECF conveniences, latency shape of each operation.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/session.h"
#include "util/world.h"

namespace music::core {
namespace {

using test::MusicWorld;
using test::WorldOptions;

TEST(MusicBasic, Listing1EndToEnd) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // lockRef = createLockRef(key);
    auto ref = co_await c.create_lock_ref("key");
    CO_ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref.value(), 1);
    // while (acquireLock(key, lockRef) != true) skip;
    auto acq = co_await c.acquire_lock_blocking("key", ref.value());
    CO_ASSERT_TRUE(acq.ok());
    // v1 = criticalGet(key, lockRef);  — no value yet
    auto v1 = co_await c.critical_get("key", ref.value());
    EXPECT_EQ(v1.status(), OpStatus::NotFound);
    // criticalPut(key, lockRef, v2);
    auto put = co_await c.critical_put("key", ref.value(), Value("42"));
    CO_ASSERT_TRUE(put.ok());
    // v2 is guaranteed to be the true value of the key.
    auto v2 = co_await c.critical_get("key", ref.value());
    CO_ASSERT_TRUE(v2.ok());
    EXPECT_EQ(v2.value().data, "42");
    // releaseLock(key, lockRef);
    auto rel = co_await c.release_lock("key", ref.value());
    EXPECT_TRUE(rel.ok());
  });
  ASSERT_TRUE(ok);
  EXPECT_EQ(w.replica(0).stats().critical_puts +
                w.replica(1).stats().critical_puts +
                w.replica(2).stats().critical_puts,
            1u);
}

TEST(MusicBasic, ReadModifyWriteAcrossCriticalSections) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto body = [&](LockRef ref) -> sim::Task<Status> {
        auto g = co_await c.critical_get("cnt", ref);
        int v = g.ok() ? std::stoi(g.value().data) : 0;
        co_return co_await c.critical_put("cnt", ref, Value(std::to_string(v + 1)));
      };
      auto st = co_await c.with_lock("cnt", body);
      CO_ASSERT_TRUE(st.ok());
    }
    auto final_v = co_await w.replica(0).get_quorum_unlocked("cnt");
    CO_ASSERT_TRUE(final_v.ok());
    EXPECT_EQ(final_v.value().data, "3");
  });
  ASSERT_TRUE(ok);
}

TEST(MusicBasic, LockRefsIncreasePerKeyAndAreIndependentAcrossKeys) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto a1 = co_await c.create_lock_ref("a");
    auto a2 = co_await c.create_lock_ref("a");
    auto b1 = co_await c.create_lock_ref("b");
    EXPECT_EQ(a1.value(), 1);
    EXPECT_EQ(a2.value(), 2);
    EXPECT_EQ(b1.value(), 1);
  });
  ASSERT_TRUE(ok);
}

TEST(MusicBasic, CriticalDeleteHidesKeyFromReads) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto body = [&](LockRef ref) -> sim::Task<Status> {
      co_await c.critical_put("k", ref, Value("x"));
      auto st = co_await c.critical_delete("k", ref);
      EXPECT_TRUE(st.ok());
      auto g = co_await c.critical_get("k", ref);
      EXPECT_EQ(g.status(), OpStatus::NotFound);
      co_return Status::Ok();
    };
    auto st = co_await c.with_lock("k", body);
    EXPECT_TRUE(st.ok());
    auto g = co_await c.get("k");
    EXPECT_EQ(g.status(), OpStatus::NotFound);
  });
  ASSERT_TRUE(ok);
}

TEST(MusicBasic, EventualPutGetWithoutLocks) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await c.put("cfg", Value("hello"));
    CO_ASSERT_TRUE(st.ok());
    co_await sim::sleep_for(w.sim, sim::sec(1));  // eventual propagation
    auto g = co_await c.get("cfg");
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().data, "hello");
  });
  ASSERT_TRUE(ok);
}

TEST(MusicBasic, CriticalPutOverridesInitializationPut) {
  // put() is allowed as initialization before the first critical section;
  // criticalPuts always outrank it (lockRef-major timestamps).
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await c.put("job", Value("PENDING"));
    auto body = [&](LockRef ref) -> sim::Task<Status> {
      auto g = co_await c.critical_get("job", ref);
      EXPECT_EQ(g.ok() ? g.value().data : "?", "PENDING");
      co_return co_await c.critical_put("job", ref, Value("RUNNING"));
    };
    co_await c.with_lock("job", body);
    // A later plain put must NOT override critical state.
    co_await c.put("job", Value("SNEAKY"));
    co_await sim::sleep_for(w.sim, sim::sec(1));
    auto v = co_await w.replica(1).get_quorum_unlocked("job");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().data, "RUNNING");
  });
  ASSERT_TRUE(ok);
}

TEST(MusicBasic, GetAllKeysListsByPrefix) {
  MusicWorld w;
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      co_await c.put("job-" + std::to_string(i), Value("d"));
    }
    co_await c.put("user-1", Value("u"));
    co_await sim::sleep_for(w.sim, sim::sec(1));
    auto keys = co_await c.get_all_keys("job-");
    CO_ASSERT_TRUE(keys.ok());
    EXPECT_EQ(keys.value().size(), 4u);
    for (const auto& k : keys.value()) {
      EXPECT_EQ(k.rfind("job-", 0), 0u);
    }
  });
  ASSERT_TRUE(ok);
}

TEST(MusicLatency, OperationCostsMatchFig5bShape) {
  // Fig. 5(b) for lUs: createLockRef/releaseLock ~4 RTTs (219-230ms); the
  // acquire grant ~1 quorum RTT (~55ms); criticalPut ~1 quorum RTT (~93ms
  // measured there); local peek sub-millisecond.
  MusicWorld w;
  auto& c = w.client(0);  // site 0 (Ohio): nearest quorum peer 53.79ms RTT
  sim::Time t_create = 0, t_acquire = 0, t_put = 0, t_release = 0;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    sim::Time t0 = w.sim.now();
    auto ref = co_await c.create_lock_ref("k");
    t_create = w.sim.now() - t0;
    CO_ASSERT_TRUE(ref.ok());

    t0 = w.sim.now();
    auto acq = co_await c.acquire_lock_blocking("k", ref.value());
    t_acquire = w.sim.now() - t0;
    CO_ASSERT_TRUE(acq.ok());

    t0 = w.sim.now();
    co_await c.critical_put("k", ref.value(), Value("v"));
    t_put = w.sim.now() - t0;

    t0 = w.sim.now();
    co_await c.release_lock("k", ref.value());
    t_release = w.sim.now() - t0;
  });
  ASSERT_TRUE(ok);
  // Consensus ops: ~4 x 54ms.
  EXPECT_GT(t_create, sim::ms(180));
  EXPECT_LT(t_create, sim::ms(280));
  EXPECT_GT(t_release, sim::ms(180));
  EXPECT_LT(t_release, sim::ms(280));
  // Grant: one synchFlag quorum read (+ the startTime write): ~54-60ms.
  EXPECT_GT(t_acquire, sim::ms(40));
  EXPECT_LT(t_acquire, sim::ms(120));
  // criticalPut: one quorum write.
  EXPECT_GT(t_put, sim::ms(40));
  EXPECT_LT(t_put, sim::ms(90));
  // Amortization (§X-B4): lock overhead dominates a batch-1 section.
  EXPECT_GT(t_create + t_release, 4 * t_put);
}

TEST(MusicBasic, WorksAcrossAllTable2Profiles) {
  for (auto& profile : sim::LatencyProfile::table2()) {
    WorldOptions opt;
    opt.profile = profile;
    MusicWorld w(opt);
    auto& c = w.client(0);
    bool ok = w.runner.run([&]() -> sim::Task<void> {
      auto body = [&](LockRef ref) -> sim::Task<Status> {
        co_return co_await c.critical_put("k", ref, Value("v"));
      };
      auto st = co_await c.with_lock("k", body);
      EXPECT_TRUE(st.ok()) << profile.name;
    });
    ASSERT_TRUE(ok) << profile.name;
  }
}

TEST(MusicBasic, NineNodeShardedClusterWorks) {
  WorldOptions opt;
  opt.store_nodes = 9;
  MusicWorld w(opt);
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      Key key = "key" + std::to_string(i);
      auto body = [&](LockRef ref) -> sim::Task<Status> {
        co_return co_await c.critical_put(key, ref, Value("v"));
      };
      auto st = co_await c.with_lock(key, body);
      EXPECT_TRUE(st.ok()) << key;
    }
  });
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::core
