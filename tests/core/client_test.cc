// MusicClient behavior tests: the §III retry discipline, replica preference
// and failover, request timeouts, with_lock cleanup.
#include <gtest/gtest.h>

#include "core/client.h"

#include "core/session.h"
#include "util/world.h"

namespace music::core {
namespace {

using test::MusicWorld;
using test::WorldOptions;

TEST(Client, PrefersItsLocalReplica) {
  MusicWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto body = [&](LockRef ref) -> sim::Task<Status> {
      co_return co_await w.client(1).critical_put("k", ref, Value("v"));
    };
    auto st = co_await w.client(1).with_lock("k", body);
    EXPECT_TRUE(st.ok());
  });
  ASSERT_TRUE(ok);
  // Client 1 lives at site 1: all its traffic went to replica 1.
  EXPECT_GT(w.replica(1).stats().create_lock_ref, 0u);
  EXPECT_EQ(w.replica(0).stats().create_lock_ref, 0u);
  EXPECT_EQ(w.replica(2).stats().create_lock_ref, 0u);
}

TEST(Client, FailsOverToRemoteReplicasWhenLocalIsDown) {
  MusicWorld w;
  w.replica(1).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await w.client(1).create_lock_ref("k");
    EXPECT_TRUE(ref.ok());
  }, sim::sec(120));
  ASSERT_TRUE(ok);
  EXPECT_GT(w.replica(0).stats().create_lock_ref +
                w.replica(2).stats().create_lock_ref,
            0u);
}

TEST(Client, RequestTimeoutCoversCrashedReplicaMidRequest) {
  // The replica dies while a request is in flight: the reply never comes;
  // the client times the request out and retries elsewhere.
  MusicWorld w;
  auto& c = w.client(0);
  w.sim.schedule(sim::ms(1), [&] { w.replica(0).set_down(true); });
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    EXPECT_TRUE(ref.ok());  // served by a remote replica after the timeout
  }, sim::sec(120));
  ASSERT_TRUE(ok);
}

TEST(Client, WithLockEvictsItsRefWhenNeverGranted) {
  MusicWorld w;
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // c0 wedges the key.
    auto ref = co_await c0.create_lock_ref("k");
    co_await c0.acquire_lock_blocking("k", ref.value());
    // c1 gives up and must leave no queue residue behind c0's ref.
    auto body = [&](LockRef r) -> sim::Task<Status> {
      co_return co_await c1.critical_put("k", r, Value("x"));
    };
    auto st = co_await c1.with_lock("k", body);
    EXPECT_EQ(st.status(), OpStatus::Timeout);
    // After c0 releases, a fresh section is granted immediately (no orphan
    // ahead in the queue).
    co_await c0.release_lock("k", ref.value());
    sim::Time t0 = w.sim.now();
    auto st2 = co_await c1.with_lock("k", body);
    EXPECT_TRUE(st2.ok());
    EXPECT_LT(w.sim.now() - t0, sim::sec(3));  // no orphan wait
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

TEST(Client, AllReplicasDownYieldsRetryExhaustedNotHang) {
  MusicWorld w;
  for (int i = 0; i < 3; ++i) w.replica(i).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await w.client(0).create_lock_ref("k");
    EXPECT_EQ(ref.status(), OpStatus::RetryExhausted);
    EXPECT_FALSE(ref.retryable());  // the budget is spent; no retry loop
    EXPECT_GT(w.client(0).stats().retry_exhausted, 0u);
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

TEST(Client, EventualOpsRetryAcrossReplicas) {
  MusicWorld w;
  w.replica(0).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await w.client(0).put("cfg", Value("v"));
    EXPECT_TRUE(st.ok());
    auto g = co_await w.client(0).get("cfg");
    EXPECT_TRUE(g.ok());
  }, sim::sec(120));
  ASSERT_TRUE(ok);
}

TEST(Client, PollBudgetBoundsAcquireBlocking) {
  WorldOptions opt;
  MusicWorld w(opt);
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto r0 = co_await c0.create_lock_ref("k");
    co_await c0.acquire_lock_blocking("k", r0.value());
    auto r1 = co_await c1.create_lock_ref("k");
    sim::Time t0 = w.sim.now();
    auto st = co_await c1.acquire_lock_blocking("k", r1.value());
    EXPECT_EQ(st.status(), OpStatus::Timeout);
    // Bounded by max_poll_attempts x (backoff + rpc, some polls remote):
    // ~2 simulated minutes, not unbounded.
    EXPECT_LT(w.sim.now() - t0, sim::sec(180));
    co_await c1.remove_lock_ref("k", r1.value());
    co_await c0.release_lock("k", r0.value());
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

TEST(Client, DecorrelatedBackoffStaysWithinEnvelope) {
  ClientConfig cfg;
  cfg.retry_backoff_base = sim::ms(5);
  cfg.retry_backoff_cap = sim::ms(320);
  sim::Rng rng(42);
  sim::Duration prev = cfg.retry_backoff_base;
  sim::Duration seen_max = 0;
  for (int i = 0; i < 2000; ++i) {
    sim::Duration next = decorrelated_backoff(cfg, rng, prev);
    ASSERT_GE(next, cfg.retry_backoff_base);
    ASSERT_LE(next, cfg.retry_backoff_cap);
    ASSERT_LE(next, 3 * std::max(prev, cfg.retry_backoff_base));
    seen_max = std::max(seen_max, next);
    prev = next;
  }
  // The chain actually grows toward the cap (it is not stuck at base).
  EXPECT_GT(seen_max, cfg.retry_backoff_cap / 2);
}

TEST(Client, OpDeadlineBoundsRetryLoop) {
  // A dead store majority makes every attempt a retryable Timeout; the
  // per-op deadline must cut the loop long before max_attempts would.
  WorldOptions opt;
  opt.client.op_deadline = sim::sec(2);
  MusicWorld w(opt);
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    co_await c.acquire_lock_blocking("k", ref.value());
    w.store.replica(1).set_down(true);
    w.store.replica(2).set_down(true);
    sim::Time t0 = w.sim.now();
    auto st = co_await c.critical_put("k", ref.value(), Value("v"));
    EXPECT_EQ(st.status(), OpStatus::RetryExhausted);
    EXPECT_GE(c.stats().deadline_exceeded, 1u);
    // Bounded by deadline + one in-flight request, nowhere near the
    // 24-attempt budget's worth of timeouts.
    EXPECT_LT(w.sim.now() - t0, sim::sec(10));
    w.store.replica(1).set_down(false);
    w.store.replica(2).set_down(false);
    co_await c.release_lock("k", ref.value());
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

TEST(Client, ConsecutiveFailuresDemoteReplicas) {
  // With the store majority dead every MUSIC replica keeps timing out;
  // after health_fail_threshold consecutive failures the client demotes
  // them.  Once the stores heal, quarantine must not wedge the client (it
  // falls back to up replicas when everything healthy is demoted).
  WorldOptions opt;
  opt.client.max_attempts = 12;
  MusicWorld w(opt);
  auto& c = w.client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    co_await c.acquire_lock_blocking("k", ref.value());
    w.store.replica(1).set_down(true);
    w.store.replica(2).set_down(true);
    auto st = co_await c.critical_put("k", ref.value(), Value("v"));
    EXPECT_EQ(st.status(), OpStatus::RetryExhausted);
    EXPECT_GE(c.stats().demotions, 1u);
    w.store.replica(1).set_down(false);
    w.store.replica(2).set_down(false);
    auto st2 = co_await c.critical_put("k", ref.value(), Value("v2"));
    EXPECT_TRUE(st2.ok());
    co_await c.release_lock("k", ref.value());
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::core
