// MusicClient behavior tests: the §III retry discipline, replica preference
// and failover, request timeouts, with_lock cleanup.
#include <gtest/gtest.h>

#include "core/client.h"

#include "core/session.h"
#include "util/world.h"

namespace music::core {
namespace {

using test::MusicWorld;
using test::WorldOptions;

TEST(Client, PrefersItsLocalReplica) {
  MusicWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto body = [&](LockRef ref) -> sim::Task<Status> {
      co_return co_await w.client(1).critical_put("k", ref, Value("v"));
    };
    auto st = co_await w.client(1).with_lock("k", body);
    EXPECT_TRUE(st.ok());
  });
  ASSERT_TRUE(ok);
  // Client 1 lives at site 1: all its traffic went to replica 1.
  EXPECT_GT(w.replica(1).stats().create_lock_ref, 0u);
  EXPECT_EQ(w.replica(0).stats().create_lock_ref, 0u);
  EXPECT_EQ(w.replica(2).stats().create_lock_ref, 0u);
}

TEST(Client, FailsOverToRemoteReplicasWhenLocalIsDown) {
  MusicWorld w;
  w.replica(1).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await w.client(1).create_lock_ref("k");
    EXPECT_TRUE(ref.ok());
  }, sim::sec(120));
  ASSERT_TRUE(ok);
  EXPECT_GT(w.replica(0).stats().create_lock_ref +
                w.replica(2).stats().create_lock_ref,
            0u);
}

TEST(Client, RequestTimeoutCoversCrashedReplicaMidRequest) {
  // The replica dies while a request is in flight: the reply never comes;
  // the client times the request out and retries elsewhere.
  MusicWorld w;
  auto& c = w.client(0);
  w.sim.schedule(sim::ms(1), [&] { w.replica(0).set_down(true); });
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("k");
    EXPECT_TRUE(ref.ok());  // served by a remote replica after the timeout
  }, sim::sec(120));
  ASSERT_TRUE(ok);
}

TEST(Client, WithLockEvictsItsRefWhenNeverGranted) {
  MusicWorld w;
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // c0 wedges the key.
    auto ref = co_await c0.create_lock_ref("k");
    co_await c0.acquire_lock_blocking("k", ref.value());
    // c1 gives up and must leave no queue residue behind c0's ref.
    auto body = [&](LockRef r) -> sim::Task<Status> {
      co_return co_await c1.critical_put("k", r, Value("x"));
    };
    auto st = co_await c1.with_lock("k", body);
    EXPECT_EQ(st.status(), OpStatus::Timeout);
    // After c0 releases, a fresh section is granted immediately (no orphan
    // ahead in the queue).
    co_await c0.release_lock("k", ref.value());
    sim::Time t0 = w.sim.now();
    auto st2 = co_await c1.with_lock("k", body);
    EXPECT_TRUE(st2.ok());
    EXPECT_LT(w.sim.now() - t0, sim::sec(3));  // no orphan wait
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

TEST(Client, AllReplicasDownYieldsTimeoutNotHang) {
  MusicWorld w;
  for (int i = 0; i < 3; ++i) w.replica(i).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await w.client(0).create_lock_ref("k");
    EXPECT_EQ(ref.status(), OpStatus::Timeout);
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

TEST(Client, EventualOpsRetryAcrossReplicas) {
  MusicWorld w;
  w.replica(0).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await w.client(0).put("cfg", Value("v"));
    EXPECT_TRUE(st.ok());
    auto g = co_await w.client(0).get("cfg");
    EXPECT_TRUE(g.ok());
  }, sim::sec(120));
  ASSERT_TRUE(ok);
}

TEST(Client, PollBudgetBoundsAcquireBlocking) {
  WorldOptions opt;
  MusicWorld w(opt);
  auto& c0 = w.client(0);
  auto& c1 = w.client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto r0 = co_await c0.create_lock_ref("k");
    co_await c0.acquire_lock_blocking("k", r0.value());
    auto r1 = co_await c1.create_lock_ref("k");
    sim::Time t0 = w.sim.now();
    auto st = co_await c1.acquire_lock_blocking("k", r1.value());
    EXPECT_EQ(st.status(), OpStatus::Timeout);
    // Bounded by max_poll_attempts x (backoff + rpc, some polls remote):
    // ~2 simulated minutes, not unbounded.
    EXPECT_LT(w.sim.now() - t0, sim::sec(180));
    co_await c1.remove_lock_ref("k", r1.value());
    co_await c0.release_lock("k", r0.value());
  }, sim::sec(600));
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::core
