// Shared test fixtures: ready-made simulated deployments mirroring the
// paper's (Fig. 1): a 3-site cluster with one store node per site, MUSIC
// replicas at each site, and clients with site-local preference order.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace music::test {

/// Runs a Task<void> to completion on the simulation, with a virtual-time
/// cap; returns false if it did not complete in time.
class TaskRunner {
 public:
  explicit TaskRunner(sim::Simulation& s) : sim_(s) {}

  template <typename TaskFactory>
  bool run(TaskFactory&& factory, sim::Duration limit = sim::sec(600)) {
    bool done = false;
    sim::spawn(sim_, wrap(factory(), &done));
    sim_.run_until(sim_.now() + limit);
    return done;
  }

 private:
  static sim::Task<void> wrap(sim::Task<void> t, bool* done) {
    co_await std::move(t);
    *done = true;
  }

  sim::Simulation& sim_;
};

/// Options for building a MUSIC world.
struct WorldOptions {
  uint64_t seed = 1;
  sim::LatencyProfile profile = sim::LatencyProfile::profile_lus();
  int store_nodes = 3;  // interleaved across 3 sites
  core::MusicConfig music{};
  ds::StoreConfig store{};
  sim::NetworkConfig net{};
  core::ClientConfig client{};
  int clients_per_site = 1;
  /// > 0 switches the world to conservative PDES with this many site-lane
  /// workers (lookahead derived from the profile) before the Network is
  /// built.  0 = classic kernel; existing tests and goldens are unaffected.
  /// PDES worlds draw from per-lane rng streams, so their results differ
  /// from classic runs but are bit-identical at any worker count.
  size_t pdes_workers = 0;

  WorldOptions() { net.profile = profile; }
};

/// A complete MUSIC deployment: simulation, network, store cluster, lock
/// store, one MUSIC replica per site, and clients.
class MusicWorld {
 public:
  explicit MusicWorld(WorldOptions opt = WorldOptions())
      : options(std::move(opt)),
        sim(options.seed),
        net(sim, [this] {
          auto n = options.net;
          n.profile = options.profile;
          // enable_pdes must precede Network construction (the net arms
          // per-lane delivery state); this init-list lambda is the one spot
          // between the two members.
          if (options.pdes_workers > 0) {
            sim::Simulation::PdesOptions po;
            po.sites = n.profile.num_sites();
            po.workers = options.pdes_workers;
            po.lookahead = sim::Network::conservative_lookahead(n);
            sim.enable_pdes(po);
          }
          return n;
        }()),
        store(sim, net, options.store, node_sites(options.store_nodes)),
        locks(store),
        runner(sim) {
    for (int site = 0; site < 3; ++site) {
      replicas.push_back(std::make_unique<core::MusicReplica>(
          store, locks, options.music, site));
    }
    for (int site = 0; site < 3; ++site) {
      for (int c = 0; c < options.clients_per_site; ++c) {
        clients.push_back(std::make_unique<core::MusicClient>(
            sim, net, prefs(site), options.client, site));
      }
    }
  }

  /// Replica preference order for a client at `site` (local first).
  std::vector<core::MusicReplica*> prefs(int site) {
    std::vector<core::MusicReplica*> v{replicas[static_cast<size_t>(site)].get()};
    for (int i = 0; i < 3; ++i) {
      if (i != site) v.push_back(replicas[static_cast<size_t>(i)].get());
    }
    return v;
  }

  core::MusicClient& client(size_t i) { return *clients.at(i); }
  core::MusicReplica& replica(int site) {
    return *replicas.at(static_cast<size_t>(site));
  }

  static std::vector<int> node_sites(int n) {
    std::vector<int> v;
    v.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) v.push_back(i % 3);
    return v;
  }

  WorldOptions options;
  sim::Simulation sim;
  sim::Network net;
  ds::StoreCluster store;
  ls::LockStore locks;
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  std::vector<std::unique_ptr<core::MusicClient>> clients;
  TaskRunner runner;
};

/// A store-only world (datastore/lockstore tests).
class StoreWorld {
 public:
  explicit StoreWorld(uint64_t seed = 1,
                      sim::LatencyProfile profile = sim::LatencyProfile::profile_lus(),
                      int nodes = 3, ds::StoreConfig cfg = ds::StoreConfig())
      : sim(seed),
        net(sim, [&] {
          sim::NetworkConfig n;
          n.profile = profile;
          return n;
        }()),
        store(sim, net, cfg, MusicWorld::node_sites(nodes)),
        locks(store),
        runner(sim) {}

  sim::Simulation sim;
  sim::Network net;
  ds::StoreCluster store;
  ls::LockStore locks;
  TaskRunner runner;
};

}  // namespace music::test

// Coroutine-safe assertion macros: gtest's ASSERT_* contains a plain
// `return`, which is ill-formed inside a coroutine.  These record the
// failure and co_return instead.
#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    if (!(cond)) {                                    \
      ADD_FAILURE() << "CO_ASSERT_TRUE failed: " #cond; \
      co_return;                                      \
    }                                                 \
  } while (0)

#define CO_ASSERT_FALSE(cond) CO_ASSERT_TRUE(!(cond))

#define CO_ASSERT_EQ(a, b)                                               \
  do {                                                                   \
    if (!((a) == (b))) {                                                 \
      ADD_FAILURE() << "CO_ASSERT_EQ failed: " #a " vs " #b;             \
      co_return;                                                         \
    }                                                                    \
  } while (0)
