// fault:: unit tests: the schedule DSL parser, the nemesis engine's
// inject/heal mechanics against a live network, crash hooks, and the obs
// spans that bracket every injected fault.
#include "fault/nemesis.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace music::fault {
namespace {

TEST(ScheduleParse, FullScriptAllClauseKinds) {
  std::string err;
  auto s = Schedule::parse(
      "at 2s partition 0|1,2 for 3s;"
      "at 4s crash store 1 for 1s;"
      "at 5s crash music 2 amnesia;"
      "at 1500ms blackhole 0>1;"
      "at 6s gray 1<>2 loss 0.3 delay 50ms for 2s;"
      "at 7s spike 0>2 delay 200ms for 500ms;"
      "at 8s dup 2>0 prob 0.25",
      &err);
  ASSERT_TRUE(s.has_value()) << err;
  ASSERT_EQ(s->size(), 7u);
  const auto& v = s->specs();

  EXPECT_EQ(v[0].kind, FaultKind::Partition);
  EXPECT_EQ(v[0].at, sim::sec(2));
  EXPECT_EQ(v[0].duration, sim::sec(3));
  EXPECT_EQ(v[0].side_a, (std::set<int>{0}));
  EXPECT_EQ(v[0].side_b, (std::set<int>{1, 2}));

  EXPECT_EQ(v[1].kind, FaultKind::CrashStore);
  EXPECT_EQ(v[1].replica, 1);
  EXPECT_EQ(v[1].duration, sim::sec(1));
  EXPECT_FALSE(v[1].amnesia);

  EXPECT_EQ(v[2].kind, FaultKind::CrashMusic);
  EXPECT_EQ(v[2].replica, 2);
  EXPECT_TRUE(v[2].amnesia);
  EXPECT_EQ(v[2].duration, 0);  // until heal_all

  EXPECT_EQ(v[3].kind, FaultKind::Blackhole);
  EXPECT_EQ(v[3].at, sim::ms(1500));
  EXPECT_EQ(v[3].from_site, 0);
  EXPECT_EQ(v[3].to_site, 1);
  EXPECT_FALSE(v[3].bidirectional);

  EXPECT_EQ(v[4].kind, FaultKind::GrayLink);
  EXPECT_TRUE(v[4].bidirectional);
  EXPECT_DOUBLE_EQ(v[4].loss, 0.3);
  EXPECT_DOUBLE_EQ(v[4].delay_ms, 50.0);

  EXPECT_EQ(v[5].kind, FaultKind::LatencySpike);
  EXPECT_DOUBLE_EQ(v[5].delay_ms, 200.0);
  EXPECT_EQ(v[5].duration, sim::ms(500));

  EXPECT_EQ(v[6].kind, FaultKind::Duplication);
  EXPECT_DOUBLE_EQ(v[6].dup_prob, 0.25);
}

TEST(ScheduleParse, RejectsMalformedScripts) {
  std::string err;
  EXPECT_FALSE(Schedule::parse("", &err));
  // The string overload carries the line/col prefix of the ParseDiag form.
  EXPECT_EQ(err, "line 1, col 1: empty schedule");
  EXPECT_FALSE(Schedule::parse("partition 0|1", &err));  // missing "at TIME"
  EXPECT_FALSE(Schedule::parse("at 2x partition 0|1", &err));  // bad unit
  EXPECT_FALSE(Schedule::parse("at 2s explode 0", &err));
  EXPECT_NE(err.find("unknown fault"), std::string::npos);
  EXPECT_FALSE(Schedule::parse("at 2s partition 01", &err));   // no '|'
  EXPECT_FALSE(Schedule::parse("at 2s blackhole 0-1", &err));  // bad link
  EXPECT_FALSE(Schedule::parse("at 2s gray 0>1 loss 1.5 delay 1ms", &err));
  EXPECT_FALSE(Schedule::parse("at 2s dup 0>1 prob -0.1", &err));
  EXPECT_FALSE(Schedule::parse("at 2s crash store 1 loudly", &err));
  EXPECT_FALSE(Schedule::parse("at 2s blackhole 1>1", &err));  // self link
}

TEST(ScheduleParse, DescribeMentionsEveryClause) {
  auto s = Schedule::parse(
      "at 2s partition 0|1,2 for 3s; at 4s crash store 1 amnesia");
  ASSERT_TRUE(s.has_value());
  std::string d = s->describe();
  EXPECT_NE(d.find("at 2s partition {0}|{1,2} for 3s"), std::string::npos) << d;
  EXPECT_NE(d.find("at 4s crash store 1 (amnesia)"), std::string::npos) << d;
}

TEST(ScheduleBuilder, MirrorsTheDsl) {
  Schedule s;
  s.partition_at(sim::sec(1), {0}, {1, 2}, sim::sec(2))
      .gray_at(sim::sec(2), 0, 1, 0.1, 25.0, sim::sec(1), /*bidirectional=*/true)
      .crash_music_at(sim::sec(3), 0, sim::sec(1), /*amnesia=*/true);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.specs()[0].kind, FaultKind::Partition);
  EXPECT_EQ(s.specs()[1].kind, FaultKind::GrayLink);
  EXPECT_TRUE(s.specs()[1].bidirectional);
  EXPECT_TRUE(s.specs()[2].amnesia);
}

/// A 3-site network with one node per site, plus recording crash hooks.
class NemesisTest : public ::testing::Test {
 protected:
  NemesisTest() : sim_(11), net_(sim_, make_config()) {
    for (int s = 0; s < 3; ++s) nodes_.push_back(net_.add_node(s));
    hooks_.crash_store = [this](int r, bool down, bool amnesia) {
      store_events_.push_back({r, down, amnesia});
    };
    hooks_.crash_music = [this](int r, bool down, bool amnesia) {
      music_events_.push_back({r, down, amnesia});
    };
  }

  static sim::NetworkConfig make_config() {
    sim::NetworkConfig c;
    c.profile = sim::LatencyProfile::uniform(3, 20.0);
    c.jitter_frac = 0.0;
    return c;
  }

  struct CrashEvent {
    int replica;
    bool down;
    bool amnesia;
  };

  sim::Simulation sim_;
  sim::Network net_;
  std::vector<sim::NodeId> nodes_;
  NemesisHooks hooks_;
  std::vector<CrashEvent> store_events_;
  std::vector<CrashEvent> music_events_;
};

TEST_F(NemesisTest, ArmedScheduleFiresAndHealsOnTime) {
  Nemesis nem(sim_, net_, hooks_);
  auto s = Schedule::parse(
      "at 1s partition 0|1,2 for 2s; at 2s crash store 1 for 1s");
  ASSERT_TRUE(s.has_value());
  nem.arm(*s);

  // Probe deliverability around the fault windows.
  std::vector<std::pair<sim::Time, bool>> probes;
  for (sim::Time t : {sim::ms(500), sim::ms(1500), sim::ms(2500),
                      sim::ms(3500)}) {
    sim_.schedule_at(t, [this, &probes] {
      probes.emplace_back(sim_.now(), net_.deliverable(nodes_[0], nodes_[1]));
    });
  }
  sim_.run_until(sim::sec(5));

  ASSERT_EQ(probes.size(), 4u);
  EXPECT_TRUE(probes[0].second);   // before the partition
  EXPECT_FALSE(probes[1].second);  // during
  EXPECT_FALSE(probes[2].second);  // still during (2s window)
  EXPECT_TRUE(probes[3].second);   // healed at 3s

  ASSERT_EQ(store_events_.size(), 2u);
  EXPECT_EQ(store_events_[0].replica, 1);
  EXPECT_TRUE(store_events_[0].down);
  EXPECT_FALSE(store_events_[1].down);  // restarted at 3s

  EXPECT_EQ(nem.counters().partitions, 1u);
  EXPECT_EQ(nem.counters().store_crashes, 1u);
  EXPECT_EQ(nem.counters().heals, 2u);
  EXPECT_EQ(nem.open_faults(), 0u);
}

TEST_F(NemesisTest, HealAllEndsOpenEndedFaults) {
  Nemesis nem(sim_, net_, hooks_);
  Schedule s;
  s.partition_at(0, {0}, {1, 2});          // no duration: open-ended
  s.blackhole_at(0, 1, 2);                 // ditto
  s.crash_music_at(0, 0);                  // ditto
  nem.arm(s);
  sim_.run_until(sim::ms(10));
  EXPECT_EQ(nem.open_faults(), 3u);
  EXPECT_FALSE(net_.deliverable(nodes_[0], nodes_[1]));
  EXPECT_FALSE(net_.deliverable(nodes_[1], nodes_[2]));
  ASSERT_EQ(music_events_.size(), 1u);
  EXPECT_TRUE(music_events_[0].down);

  nem.heal_all();
  EXPECT_EQ(nem.open_faults(), 0u);
  EXPECT_TRUE(net_.deliverable(nodes_[0], nodes_[1]));
  EXPECT_TRUE(net_.deliverable(nodes_[1], nodes_[2]));
  ASSERT_EQ(music_events_.size(), 2u);
  EXPECT_FALSE(music_events_[1].down);
  EXPECT_EQ(net_.active_partitions(), 0u);
  EXPECT_EQ(net_.active_link_faults(), 0u);
}

TEST_F(NemesisTest, BidirectionalLinkFaultInstallsBothDirections) {
  Nemesis nem(sim_, net_, hooks_);
  FaultSpec spec;
  spec.kind = FaultKind::Blackhole;
  spec.from_site = 0;
  spec.to_site = 1;
  spec.bidirectional = true;
  nem.inject(spec);
  EXPECT_EQ(net_.active_link_faults(), 2u);
  EXPECT_FALSE(net_.deliverable(nodes_[0], nodes_[1]));
  EXPECT_FALSE(net_.deliverable(nodes_[1], nodes_[0]));
  nem.heal_all();
  EXPECT_EQ(net_.active_link_faults(), 0u);
}

TEST_F(NemesisTest, AmnesiaFlagReachesTheCrashHook) {
  Nemesis nem(sim_, net_, hooks_);
  auto s = Schedule::parse("at 0s crash store 2 amnesia for 1s");
  ASSERT_TRUE(s.has_value());
  nem.arm(*s);
  sim_.run_until(sim::sec(2));
  ASSERT_EQ(store_events_.size(), 2u);
  EXPECT_TRUE(store_events_[0].amnesia);
  EXPECT_TRUE(store_events_[1].amnesia);  // restart knows it was amnesiac
}

TEST_F(NemesisTest, EveryFaultIsBracketedByAnObsSpan) {
  obs::Tracer tracer;
  sim_.set_tracer(&tracer);
  Nemesis nem(sim_, net_, hooks_);
  auto s = Schedule::parse(
      "at 1s partition 0|1,2 for 1s;"
      "at 2s gray 0>1 loss 0.5 delay 10ms for 1s;"
      "at 3s crash music 1 for 1s");
  ASSERT_TRUE(s.has_value());
  nem.arm(*s);
  sim_.run_until(sim::sec(6));

  std::vector<const obs::Span*> fault_spans;
  for (const auto& sp : tracer.spans()) {
    if (std::string_view(sp.name).substr(0, 6) == "fault.") {
      fault_spans.push_back(&sp);
    }
  }
  ASSERT_EQ(fault_spans.size(), 3u);
  EXPECT_EQ(std::string_view(fault_spans[0]->name), "fault.partition");
  EXPECT_EQ(fault_spans[0]->begin_us, sim::sec(1));
  EXPECT_EQ(fault_spans[0]->end_us, sim::sec(2));
  EXPECT_NE(fault_spans[0]->detail.find("partition {0}|{1,2}"),
            std::string::npos);
  EXPECT_EQ(std::string_view(fault_spans[1]->name), "fault.gray_link");
  EXPECT_EQ(std::string_view(fault_spans[2]->name), "fault.crash_music");
  for (const auto* sp : fault_spans) EXPECT_TRUE(sp->finished());
}

TEST(ScheduleParse, RestartClauseVariants) {
  auto s = Schedule::parse(
      "at 1s restart 2\n"
      "at 2s restart 0 version 1 for 500ms\n"
      "at 3s restart 1 version 2 amnesia for 1s\n"
      "at 4s restart 1 amnesia");
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->size(), 4u);
  EXPECT_EQ(s->specs()[0].kind, FaultKind::Restart);
  EXPECT_EQ(s->specs()[0].site, 2);
  EXPECT_EQ(s->specs()[0].version, 0);  // plain bounce, no version change
  EXPECT_FALSE(s->specs()[0].amnesia);
  EXPECT_EQ(s->specs()[1].site, 0);
  EXPECT_EQ(s->specs()[1].version, 1);  // downgrade step
  EXPECT_EQ(s->specs()[1].duration, sim::ms(500));
  EXPECT_EQ(s->specs()[2].version, 2);
  EXPECT_TRUE(s->specs()[2].amnesia);
  EXPECT_TRUE(s->specs()[3].amnesia);

  std::string d = s->describe();
  EXPECT_NE(d.find("restart site 0 version=1"), std::string::npos);
  EXPECT_NE(d.find("(amnesia)"), std::string::npos);
}

TEST(ScheduleParse, RejectsMalformedRestartClauses) {
  std::string err;
  EXPECT_FALSE(Schedule::parse("at 1s restart", &err));
  EXPECT_FALSE(Schedule::parse("at 1s restart -1", &err));
  EXPECT_FALSE(Schedule::parse("at 1s restart 0 version", &err));
  EXPECT_FALSE(Schedule::parse("at 1s restart 0 version 0", &err));
  EXPECT_FALSE(Schedule::parse("at 1s restart 0 version x", &err));
  EXPECT_FALSE(Schedule::parse("at 1s restart 0 amnesia version 2", &err));
  EXPECT_FALSE(Schedule::parse("at 1s restart 0 loudly", &err));
}

TEST_F(NemesisTest, RestartFaultDrivesTheSiteHook) {
  struct RestartEvent {
    int site;
    bool down;
    bool amnesia;
    int version;
  };
  std::vector<RestartEvent> events;
  hooks_.restart_site = [&events](int site, bool down, bool amnesia,
                                  int version) {
    events.push_back({site, down, amnesia, version});
  };
  Nemesis nem(sim_, net_, hooks_);
  auto s = Schedule::parse("at 1s restart 1 version 2 for 500ms");
  ASSERT_TRUE(s.has_value());
  nem.arm(*s);
  sim_.run_until(sim::sec(3));

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].site, 1);
  EXPECT_TRUE(events[0].down);
  EXPECT_EQ(events[1].site, 1);
  EXPECT_FALSE(events[1].down);      // back after the 500ms downtime
  EXPECT_EQ(events[1].version, 2);   // restarted onto the v2 binary
  EXPECT_EQ(nem.counters().restarts, 1u);
  EXPECT_EQ(nem.open_faults(), 0u);
}

TEST_F(NemesisTest, OpenEndedRestartHealsViaHealAll) {
  int backs = 0;
  hooks_.restart_site = [&backs](int, bool down, bool, int) {
    if (!down) ++backs;
  };
  Nemesis nem(sim_, net_, hooks_);
  Schedule s;
  s.restart_at(0, /*site=*/2, /*dur=*/0, /*version=*/1, /*amnesia=*/true);
  nem.arm(s);
  sim_.run_until(sim::ms(10));
  EXPECT_EQ(nem.open_faults(), 1u);
  EXPECT_EQ(backs, 0);
  nem.heal_all();
  EXPECT_EQ(backs, 1);
  EXPECT_EQ(nem.open_faults(), 0u);
}

TEST_F(NemesisTest, MetricsExportCoversCounters) {
  obs::MetricsRegistry reg;
  Nemesis nem(sim_, net_, hooks_);
  auto s = Schedule::parse("at 0s partition 0|1,2 for 1s");
  ASSERT_TRUE(s.has_value());
  nem.arm(*s);
  sim_.run_until(sim::sec(2));
  nem.export_metrics(reg);
  EXPECT_EQ(reg.counter("nemesis.partitions").value, 1u);
  EXPECT_EQ(reg.counter("nemesis.heals").value, 1u);
  EXPECT_EQ(reg.counter("nemesis.open").value, 0u);
}

}  // namespace
}  // namespace music::fault
