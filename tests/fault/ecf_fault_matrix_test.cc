// The ECF-under-failure matrix: every nemesis fault class pointed at the
// protocol, with verify::EcfChecker as the oracle.
//
// Scenarios (each run across MUSIC_FAULT_SEEDS seeds; default 2 for the
// fast tier-1 run, the CI chaos-soak job sets 8):
//   - holder-site isolation: the holder's site is partitioned away, a peer
//     forcedReleases it and takes over — the §IV-B synchronization must
//     fence the zombie's late writes out of the LWW order;
//   - lock-holder crash mid-batch: a forcedRelease lands while a pipelined
//     Session batch executes; per-op results must be an Ok-prefix followed
//     by a NotLockHolder tail (no Ok after the preemption point);
//   - dead store majority: quorum ops stall without false acks and surface
//     RetryExhausted (not a hang, not a fake Ok), then finish after heal;
//   - gray-link soak: elevated loss/delay on WAN links under a concurrent
//     workload;
//   - stacked partitions: overlapping partitions (including a window where
//     no quorum exists anywhere) injected and healed independently.
//
// The per-seed worlds are independent and deterministic, so each scenario
// fans its seed list across par::run_worlds (one world per thread,
// start-to-finish) and asserts the collected outcomes on the main thread —
// the gtest failure text still names the seed.  MUSIC_FAULT_THREADS caps
// the fan-out (default: hardware concurrency).
//
// Teeth check: a run with MusicConfig::test_skip_synchronization (fencing
// deliberately broken) MUST trip the oracle on the exact same isolation
// scenario that passes with fencing on.  A matrix that cannot fail proves
// nothing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/session.h"
#include "fault/fault.h"
#include "fault/nemesis.h"
#include "par/par.h"
#include "util/world.h"
#include "verify/oracle.h"

namespace music::verify {
namespace {

using test::MusicWorld;
using test::WorldOptions;

/// Seeds for the matrix: 1..N where N comes from MUSIC_FAULT_SEEDS.
std::vector<uint64_t> matrix_seeds() {
  int n = 2;
  if (const char* env = std::getenv("MUSIC_FAULT_SEEDS")) {
    int v = std::atoi(env);
    if (v > 0) n = v;
  }
  std::vector<uint64_t> seeds;
  for (int i = 1; i <= n; ++i) seeds.push_back(static_cast<uint64_t>(i));
  return seeds;
}

/// Worker-thread count for the seed fan (0 = par::default_threads()).
size_t matrix_threads() {
  if (const char* env = std::getenv("MUSIC_FAULT_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 0;
}

/// Per-seed scenario verdict, filled on the worker thread and asserted on
/// the gtest main thread.  Worker code never touches gtest.
struct SeedOutcome {
  bool ok = true;
  std::string detail;

  void fail(const std::string& why) {
    ok = false;
    detail += why;
    detail += "; ";
  }
  void check(bool cond, const char* what) {
    if (!cond) fail(what);
  }
};

/// Coroutine-safe outcome check: records the failure into the scenario's
/// SeedOutcome and co_returns (gtest's ASSERT_* can't be used off the main
/// thread or inside coroutines).
#define CO_CHECK(out, cond)                   \
  do {                                        \
    if (!(cond)) {                            \
      (out).fail("check failed: " #cond);     \
      co_return;                              \
    }                                         \
  } while (0)

/// Nemesis crash hooks wired to a MusicWorld: store crashes honour the
/// amnesia-vs-durable distinction (amnesia wipes the replica's table and
/// acceptor state before it comes back), MUSIC crashes route through
/// MusicReplica::set_down which drops soft state on amnesia.
fault::NemesisHooks world_hooks(MusicWorld& w) {
  fault::NemesisHooks hooks;
  hooks.crash_store = [&w](int replica, bool down, bool amnesia) {
    if (down && amnesia) w.store.replica(replica).wipe_state();
    w.store.replica(replica).set_down(down);
  };
  hooks.crash_music = [&w](int replica, bool down, bool amnesia) {
    w.replica(replica).set_down(down, amnesia);
  };
  return hooks;
}

constexpr int kKeys = 2;

Key soak_key(int i) { return "fx" + std::to_string(i); }

/// A worker's life for the soak scenarios: repeated critical sections of
/// unbatched puts/gets with occasional crash-style abandonment, every
/// transition reported to the oracle.
sim::Task<void> worker_life(MusicWorld& w, CheckedClient c, int id,
                            sim::Time end, uint64_t seed, int* completed) {
  sim::Rng rng(seed);
  while (w.sim.now() < end) {
    Key key = soak_key(static_cast<int>(rng.next_u64() % kKeys));
    auto ref = co_await c.create_lock_ref(key);
    if (!ref.ok()) {
      co_await sim::sleep_for(w.sim, sim::ms(100));
      continue;
    }
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    if (!acq.ok()) {
      co_await c.inner().remove_lock_ref(key, ref.value());
      continue;
    }
    int ops = static_cast<int>(1 + rng.next_u64() % 3);
    for (int i = 0; i < ops; ++i) {
      if (rng.chance(0.4)) {
        co_await c.critical_get(key, ref.value());
      } else {
        // Built stepwise: GCC 12 mis-fires -Werror=restrict on
        // literal + to_string rvalue concats inside coroutine frames.
        std::string val = "w";
        val += std::to_string(id);
        val += "-";
        val += std::to_string(w.sim.now());
        val += "-";
        val += std::to_string(i);
        co_await c.critical_put(key, ref.value(), Value(val));
      }
    }
    if (!rng.chance(0.1)) {  // 10%: crash-style abandonment, never released
      auto rel = co_await c.release_lock(key, ref.value());
      if (rel.ok()) ++*completed;
    }
    co_await sim::sleep_for(w.sim, rng.uniform_int(0, sim::ms(200)));
  }
}

/// The soak scenarios' stand-in for the failure detector: workers abandon
/// their lock 10% of the time (crash-style), and with no FD running an
/// abandoned head would wedge its key for good.  The janitor periodically
/// forcedReleases whatever head it sees — through the checked client, so
/// the oracle also exercises preemption under the active faults.
sim::Task<void> janitor_life(MusicWorld& w, CheckedClient c, sim::Time end,
                             uint64_t seed) {
  sim::Rng rng(seed);
  while (w.sim.now() < end) {
    co_await sim::sleep_for(w.sim, rng.uniform_int(sim::sec(2), sim::sec(4)));
    Key key = soak_key(static_cast<int>(rng.next_u64() % kKeys));
    auto peek = co_await w.locks.peek_quorum(
        w.store.replica_at_site(static_cast<int>(rng.next_u64() % 3)), key);
    if (peek.ok() && peek.value().head.has_value()) {
      co_await c.forced_release(key, *peek.value().head);
    }
  }
}

// ---- Holder-site isolation + the fencing teeth check ----------------------

struct IsolationOutcome {
  bool oracle_ok = false;
  std::string report;
  bool drove_to_end = false;
  SeedOutcome out;
};

/// The holder's site is cut off mid-section; a peer at a connected site
/// forcedReleases the stranded ref and takes the lock over the surviving
/// quorum.  After the heal the zombie holder issues a late critical_put
/// under its stale ref (its local replica's lock view still names it
/// holder, so the guard passes).  With real fencing the takeover's
/// synchronization re-stamped the data under the new ref, which wins the
/// LWW order; with `skip_sync` the zombie write wins and the new holder
/// reads it — a Latest-State violation the oracle must catch.
IsolationOutcome run_isolation_scenario(uint64_t seed, bool skip_sync) {
  WorldOptions opt;
  opt.seed = seed;
  // No repair channels: the zombie write must be fenced out by the
  // synchronization alone, not papered over by hints or read repair.
  opt.store.hinted_handoff = false;
  opt.store.read_repair = false;
  opt.music.test_skip_synchronization = skip_sync;
  MusicWorld w(opt);
  EcfChecker checker(w.sim);
  checker.set_lenient_stale_grants(true);
  fault::Nemesis nemesis(w.sim, w.net, world_hooks(w));
  CheckedClient zombie(w.client(0), checker);   // site 0
  CheckedClient usurper(w.client(1), checker);  // site 1

  IsolationOutcome iso;
  auto drive = [&]() -> sim::Task<void> {
    SeedOutcome& out = iso.out;
    const Key k = "iso";
    // The victim takes the lock and writes the pre-partition truth.
    auto ref1r = co_await zombie.create_lock_ref(k);
    CO_CHECK(out, ref1r.ok());
    LockRef ref1 = ref1r.value();
    CO_CHECK(out, (co_await zombie.acquire_lock_blocking(k, ref1)).ok());
    CO_CHECK(out, (co_await zombie.critical_put(k, ref1, Value("v1"))).ok());

    // Isolate the holder's site (open-ended; healed below).
    fault::FaultSpec cut;
    cut.kind = fault::FaultKind::Partition;
    cut.side_a = {0};
    cut.side_b = {1, 2};
    nemesis.inject(cut);

    // Takeover over the surviving majority {1,2}: preempt, acquire, read.
    CO_CHECK(out, (co_await usurper.forced_release(k, ref1)).ok());
    auto ref2r = co_await usurper.create_lock_ref(k);
    CO_CHECK(out, ref2r.ok());
    LockRef ref2 = ref2r.value();
    CO_CHECK(out, (co_await usurper.acquire_lock_blocking(k, ref2)).ok());
    auto pre = co_await usurper.critical_get(k, ref2);
    CO_CHECK(out, pre.ok());
    CO_CHECK(out, pre.value().data == "v1");

    // Heal, then let the zombie write under its stale ref.  Its local
    // replica at site 0 never saw the forced release (LWT committed on
    // {1,2} while 0 was cut off), so the holder guard passes locally and
    // the write reaches a full quorum.
    nemesis.heal_all();
    co_await sim::sleep_for(w.sim, sim::ms(50));
    co_await zombie.critical_put(k, ref1, Value("zombie"));

    // The current holder reads again: with fencing the re-stamped "v1"
    // (under ref2) outranks the zombie's ref1 stamp; without it the
    // zombie value surfaces and the oracle flags Latest-State.
    co_await usurper.critical_get(k, ref2);
    co_await usurper.release_lock(k, ref2);
    iso.drove_to_end = true;
  };
  iso.out.check(w.runner.run(drive, sim::sec(300)), "drive did not finish");
  iso.oracle_ok = checker.ok();
  iso.report = checker.report();
  return iso;
}

TEST(EcfFaultMatrix, HolderSiteIsolationIsFencedByTheSynchronization) {
  auto seeds = matrix_seeds();
  auto outs = par::run_worlds(
      seeds,
      [](const uint64_t& s) { return run_isolation_scenario(s, false); },
      matrix_threads());
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(outs[i].out.ok)
        << "seed " << seeds[i] << ": " << outs[i].out.detail;
    EXPECT_TRUE(outs[i].drove_to_end) << "seed " << seeds[i];
    EXPECT_TRUE(outs[i].oracle_ok)
        << "seed " << seeds[i] << ": " << outs[i].report;
  }
}

TEST(EcfFaultMatrixTeeth, WeakenedFencingTripsTheOracle) {
  // Same scenario, fencing deliberately broken (test_skip_synchronization):
  // the zombie write must surface as an oracle violation.  This proves the
  // matrix can fail — the oracle actually watches the fencing path.
  auto out = run_isolation_scenario(1, /*skip_sync=*/true);
  EXPECT_TRUE(out.drove_to_end);
  EXPECT_FALSE(out.oracle_ok)
      << "oracle accepted a zombie write with synchronization disabled";
}

// ---- Lock-holder crash mid-batch ------------------------------------------

SeedOutcome run_midbatch_scenario(uint64_t seed) {
  WorldOptions opt;
  opt.seed = seed;
  MusicWorld w(opt);
  EcfChecker checker(w.sim);
  checker.set_lenient_stale_grants(true);
  CheckedClient holder(w.client(0), checker);
  CheckedClient usurper(w.client(1), checker);

  SeedOutcome out;
  const Key k = "mb";
  bool flushed = false;
  std::vector<core::BatchOpResult> results;
  auto holder_life = [&]() -> sim::Task<void> {
    auto ref = co_await holder.create_lock_ref(k);
    CO_CHECK(out, ref.ok());
    CO_CHECK(out, (co_await holder.acquire_lock_blocking(k, ref.value())).ok());
    core::Session s(holder.inner(), k, ref.value());
    for (int i = 0; i < 10; ++i) {
      std::string val = "m";
      val += std::to_string(i);
      s.put(Value(val));
    }
    // The flush races the forced release below; the holder then "crashes"
    // (never releases, never cleans up).
    co_await holder.flush(s);
    results = s.results();
    flushed = true;
  };
  auto usurper_life = [&]() -> sim::Task<void> {
    // Seed-staggered so the preemption lands at different points of the
    // batch (before it, mid-prefix, after it) across the matrix.
    co_await sim::sleep_for(
        w.sim, sim::ms(40) + sim::ms(static_cast<int64_t>(seed) * 17));
    // Peek until the holder's ref is visible (its enqueue LWT may still be
    // in flight at wake-up time), then preempt it.
    LockRef victim = kNoLockRef;
    while (victim == kNoLockRef && w.sim.now() < sim::sec(20)) {
      auto peek = co_await w.locks.peek_quorum(w.store.replica_at_site(1), k);
      if (peek.ok() && peek.value().head.has_value()) {
        victim = *peek.value().head;
        break;
      }
      co_await sim::sleep_for(w.sim, sim::ms(50));
    }
    CO_CHECK(out, victim != kNoLockRef);
    CO_CHECK(out, (co_await usurper.forced_release(k, victim)).ok());
    // Take over and prove the lock is usable after the crash.
    auto ref = co_await usurper.create_lock_ref(k);
    CO_CHECK(out, ref.ok());
    auto uacq = co_await usurper.acquire_lock_blocking(k, ref.value());
    if (!uacq.ok()) {
      std::string why = "usurper acquire failed: ";
      why += to_string(uacq.status());
      out.fail(why);
      co_return;
    }
    CO_CHECK(out,
             (co_await usurper.critical_put(k, ref.value(), Value("took-over")))
                 .ok());
    auto g = co_await usurper.critical_get(k, ref.value());
    CO_CHECK(out, g.ok());
    co_await usurper.release_lock(k, ref.value());
  };
  sim::spawn(w.sim, holder_life());
  sim::spawn(w.sim, usurper_life());
  w.sim.run_until(sim::sec(120));

  out.check(flushed, "holder flush never completed");
  out.check(results.size() == 10u, "batch result count != 10");
  // Ok-prefix / NotLockHolder-tail: once the preemption cuts the batch, no
  // later sub-op may report success.
  bool preempted = false;
  for (size_t i = 0; i < results.size(); ++i) {
    if (preempted && results[i].status == OpStatus::Ok) {
      out.fail("Ok after the preemption point at op " + std::to_string(i));
    }
    if (results[i].status == OpStatus::NotLockHolder) preempted = true;
  }
  if (!checker.ok()) out.fail(checker.report());
  return out;
}

TEST(EcfFaultMatrix, HolderCrashMidBatchKeepsOkPrefixNotLockHolderTail) {
  auto seeds = matrix_seeds();
  auto outs = par::run_worlds(
      seeds, [](const uint64_t& s) { return run_midbatch_scenario(s); },
      matrix_threads());
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(outs[i].ok) << "seed " << seeds[i] << ": " << outs[i].detail;
  }
}

// ---- Dead store majority ---------------------------------------------------

SeedOutcome run_dead_majority_scenario(uint64_t seed) {
  WorldOptions opt;
  opt.seed = seed;
  // Tight retry budget so the stalled op surfaces RetryExhausted well
  // before the outage ends (each attempt burns the store's 1.5s quorum
  // timeout; 4 attempts + capped backoff finish by ~t=10s < heal at 14s).
  opt.client.max_attempts = 4;
  MusicWorld w(opt);
  EcfChecker checker(w.sim);
  checker.set_lenient_stale_grants(true);
  fault::Nemesis nemesis(w.sim, w.net, world_hooks(w));
  SeedOutcome out;
  std::string err;
  auto sched = fault::Schedule::parse(
      "at 2s crash store 1 for 12s; at 2s crash store 2 for 12s", &err);
  if (!sched.has_value()) {
    out.fail("schedule parse: " + err);
    return out;
  }
  nemesis.arm(*sched);
  CheckedClient c(w.client(0), checker);

  auto drive = [&]() -> sim::Task<void> {
    const Key k = "dm";
    auto ref = co_await c.create_lock_ref(k);
    CO_CHECK(out, ref.ok());
    CO_CHECK(out, (co_await c.acquire_lock_blocking(k, ref.value())).ok());
    CO_CHECK(out, (co_await c.critical_put(k, ref.value(), Value("before"))).ok());

    // Into the outage: two of three store replicas are down, so no value
    // quorum exists.  The op must fail loudly — RetryExhausted, the
    // distinct terminal status — rather than hang or return a false Ok.
    co_await sim::sleep_for(w.sim, sim::sec(3));
    auto mid = co_await c.critical_put(k, ref.value(), Value("during"));
    CO_CHECK(out, !mid.ok());
    CO_CHECK(out, mid.status() == OpStatus::RetryExhausted);
    CO_CHECK(out, c.inner().stats().retry_exhausted > 0);

    // After the (durable) restarts the same section finishes cleanly.
    while (w.sim.now() < sim::sec(15)) {
      co_await sim::sleep_for(w.sim, sim::ms(500));
    }
    CO_CHECK(out, (co_await c.critical_put(k, ref.value(), Value("after"))).ok());
    auto g = co_await c.critical_get(k, ref.value());
    CO_CHECK(out, g.ok());
    CO_CHECK(out, g.value().data == "after");
    co_await c.release_lock(k, ref.value());
  };
  out.check(w.runner.run(drive, sim::sec(300)), "drive did not finish");
  if (!checker.ok()) out.fail(checker.report());
  out.check(nemesis.counters().store_crashes == 2u, "store crash count != 2");
  out.check(nemesis.counters().heals == 2u, "heal count != 2");
  out.check(nemesis.open_faults() == 0u, "faults left open");
  for (int i = 0; i < w.store.num_replicas(); ++i) {
    if (w.store.replica(i).down()) {
      out.fail("replica " + std::to_string(i) + " still down");
    }
  }
  return out;
}

TEST(EcfFaultMatrix, DeadMajorityStallsWithoutFalseAcksThenHeals) {
  auto seeds = matrix_seeds();
  auto outs = par::run_worlds(
      seeds, [](const uint64_t& s) { return run_dead_majority_scenario(s); },
      matrix_threads());
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(outs[i].ok) << "seed " << seeds[i] << ": " << outs[i].detail;
  }
}

// ---- Gray-link soak --------------------------------------------------------

SeedOutcome run_gray_link_scenario(uint64_t seed) {
  WorldOptions opt;
  opt.seed = seed;
  opt.clients_per_site = 2;
  MusicWorld w(opt);
  EcfChecker checker(w.sim);
  checker.set_lenient_stale_grants(true);
  fault::Nemesis nemesis(w.sim, w.net, world_hooks(w));
  SeedOutcome out;
  std::string err;
  auto sched = fault::Schedule::parse(
      "at 1s gray 0<>1 loss 0.25 delay 20ms for 25s; "
      "at 5s gray 1<>2 loss 0.15 delay 10ms for 15s; "
      "at 8s spike 0>2 delay 80ms for 6s; "
      "at 10s dup 2>0 prob 0.3 for 8s",
      &err);
  if (!sched.has_value()) {
    out.fail("schedule parse: " + err);
    return out;
  }
  nemesis.arm(*sched);

  sim::Time end = sim::sec(30);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    sim::spawn(w.sim,
               worker_life(w,
                           CheckedClient(w.client(static_cast<size_t>(i)),
                                         checker),
                           i, end, seed * 1000 + static_cast<uint64_t>(i),
                           &completed));
  }
  sim::spawn(w.sim, janitor_life(w, CheckedClient(w.client(4), checker), end,
                                 seed * 7777));
  w.sim.run_until(end + sim::sec(120));

  if (!checker.ok()) out.fail(checker.report());
  out.check(completed > 0, "no critical section completed");
  // Every scheduled fault was timed and has healed itself.
  out.check(nemesis.counters().link_faults == 4u, "link fault count != 4");
  out.check(nemesis.counters().heals == 4u, "heal count != 4");
  out.check(nemesis.open_faults() == 0u, "faults left open");
  out.check(w.net.active_link_faults() == 0u, "link faults still active");
  // The gray links really degraded the wire.
  out.check(w.net.link_fault_drops() > 0u, "gray links dropped nothing");
  return out;
}

TEST(EcfFaultMatrix, GrayLinkSoakHoldsEcf) {
  auto seeds = matrix_seeds();
  auto outs = par::run_worlds(
      seeds, [](const uint64_t& s) { return run_gray_link_scenario(s); },
      matrix_threads());
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(outs[i].ok) << "seed " << seeds[i] << ": " << outs[i].detail;
  }
}

// ---- Stacked partitions ----------------------------------------------------

SeedOutcome run_stacked_partition_scenario(uint64_t seed) {
  WorldOptions opt;
  opt.seed = seed;
  opt.clients_per_site = 2;
  MusicWorld w(opt);
  EcfChecker checker(w.sim);
  checker.set_lenient_stale_grants(true);
  fault::Nemesis nemesis(w.sim, w.net, world_hooks(w));
  SeedOutcome out;
  std::string err;
  // The first two overlap from 4s to 6s, a window where every cross-site
  // pair is cut and no quorum exists anywhere; they heal independently
  // (per-id, the stacking semantics PR'd alongside this matrix).
  auto sched = fault::Schedule::parse(
      "at 2s partition 0|1,2 for 4s; "
      "at 4s partition 1|0,2 for 4s; "
      "at 12s partition 2|0,1 for 3s",
      &err);
  if (!sched.has_value()) {
    out.fail("schedule parse: " + err);
    return out;
  }
  nemesis.arm(*sched);

  sim::Time end = sim::sec(25);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    sim::spawn(w.sim,
               worker_life(w,
                           CheckedClient(w.client(static_cast<size_t>(i)),
                                         checker),
                           i, end, seed * 2000 + static_cast<uint64_t>(i),
                           &completed));
  }
  sim::spawn(w.sim, janitor_life(w, CheckedClient(w.client(4), checker), end,
                                 seed * 8888));
  w.sim.run_until(end + sim::sec(120));

  if (!checker.ok()) out.fail(checker.report());
  out.check(completed > 0, "no progress after quorums returned");
  out.check(nemesis.counters().partitions == 3u, "partition count != 3");
  out.check(nemesis.counters().heals == 3u, "heal count != 3");
  out.check(w.net.active_partitions() == 0u, "partitions still active");
  return out;
}

TEST(EcfFaultMatrix, StackedPartitionChurnHoldsEcf) {
  auto seeds = matrix_seeds();
  auto outs = par::run_worlds(
      seeds,
      [](const uint64_t& s) { return run_stacked_partition_scenario(s); },
      matrix_threads());
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(outs[i].ok) << "seed " << seeds[i] << ": " << outs[i].detail;
  }
}

}  // namespace
}  // namespace music::verify
