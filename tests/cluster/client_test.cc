// cluster::Client routing semantics: ops land on the shard's owning group,
// stale-epoch routes retry transparently with WrongShard, multi-shard
// batches split / run in parallel / stitch back in order, and the whole
// surface stays ECF-clean under the armed oracle.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/cluster.h"
#include "cluster/world.h"
#include "obs/metrics.h"

namespace music::cluster {
namespace {

using test::ClusterWorld;
using test::ClusterWorldOptions;

ClusterWorldOptions sharded(int shards, int groups = 0) {
  ClusterWorldOptions opt;
  opt.cluster.shards = shards;
  opt.cluster.groups = groups;
  return opt;
}

/// Background shard move for tests that overlap a move with traffic.
sim::Task<void> do_move(Cluster* c, int shard, int to, Status* out) {
  *out = co_await c->move_shard(shard, to);
}

TEST(ClusterClient, CriticalSectionsLandOnTheOwningGroup) {
  ClusterWorld w(sharded(4));
  auto& c = w.make_client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      Key key = "k" + std::to_string(i);
      auto ref = co_await c.create_lock_ref(key);
      CO_ASSERT_TRUE(ref.ok());
      CO_ASSERT_TRUE((co_await c.acquire_lock_blocking(key, ref.value())).ok());
      CO_ASSERT_TRUE(
          (co_await c.critical_put(key, ref.value(), Value("v"))).ok());
      CO_ASSERT_TRUE((co_await c.release_lock(key, ref.value())).ok());
    }
  });
  ASSERT_TRUE(ok);
  EXPECT_TRUE(w.checker.ok()) << w.checker.report();
  EXPECT_EQ(w.cluster.total_critical_puts(), 8u);

  // Each put was counted by exactly the group owning the key's shard.
  auto map = w.cluster.snapshot();
  for (int i = 0; i < 8; ++i) {
    Key key = "k" + std::to_string(i);
    int g = map->group_of(map->route(key));
    uint64_t puts = 0;
    for (const auto& rep : w.cluster.group(g).replicas) {
      puts += rep->stats().critical_puts;
    }
    EXPECT_GT(puts, 0u) << key << " -> group " << g;
  }
}

TEST(ClusterClient, StaleEpochRouteRetriesWithWrongShard) {
  ClusterWorld w(sharded(4));
  auto& c = w.make_client(0);
  int shard = w.cluster.snapshot()->route("k0");
  int src = w.cluster.snapshot()->group_of(shard);
  int dst = (src + 1) % w.cluster.num_groups();

  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // Seed a value, then move the shard out from under the client's
    // cached snapshot.
    CO_ASSERT_TRUE((co_await c.put("k0", Value("before"))).ok());
    Status moved = co_await w.cluster.move_shard(shard, dst);
    CO_ASSERT_TRUE(moved.ok());
    CO_ASSERT_EQ(w.cluster.snapshot()->group_of(shard), dst);

    // The client's snapshot predates the move: the first dispatch bounces
    // with WrongShard, refreshes, and the op still succeeds — against the
    // destination group, which received the copied row.
    auto got = co_await c.get("k0");
    CO_ASSERT_TRUE(got.ok());
    CO_ASSERT_EQ(got.value().data, "before");
  });
  ASSERT_TRUE(ok);
  EXPECT_GE(c.stats().wrong_shard_retries, 1u);
  EXPECT_GE(c.stats().map_refreshes, 1u);
  EXPECT_GE(w.cluster.stats().wrong_shard_rejects, 1u);
  EXPECT_EQ(w.cluster.stats().moves, 1u);
  EXPECT_GT(w.cluster.stats().moved_rows, 0u);
}

TEST(ClusterClient, LockHeldAcrossAMoveStaysHeld) {
  ClusterWorld w(sharded(4));
  auto& c = w.make_client(0);
  int shard = w.cluster.snapshot()->route("held");
  int src = w.cluster.snapshot()->group_of(shard);
  int dst = (src + 1) % w.cluster.num_groups();

  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("held");
    CO_ASSERT_TRUE(ref.ok());
    CO_ASSERT_TRUE(
        (co_await c.acquire_lock_blocking("held", ref.value())).ok());
    // Move while holding: the !lq row (guard + live queue) is copied, so
    // the holder's lockRef stays valid at the destination.
    Status moved = co_await w.cluster.move_shard(shard, dst);
    CO_ASSERT_TRUE(moved.ok());
    CO_ASSERT_TRUE(
        (co_await c.critical_put("held", ref.value(), Value("x"))).ok());
    CO_ASSERT_TRUE((co_await c.release_lock("held", ref.value())).ok());

    // And the NEXT section on the same key gets a strictly later lockRef
    // from the destination group's copied guard.
    auto ref2 = co_await c.create_lock_ref("held");
    CO_ASSERT_TRUE(ref2.ok());
    CO_ASSERT_TRUE(ref2.value() > ref.value());
    CO_ASSERT_TRUE(
        (co_await c.acquire_lock_blocking("held", ref2.value())).ok());
    CO_ASSERT_TRUE((co_await c.release_lock("held", ref2.value())).ok());
  });
  ASSERT_TRUE(ok);
  EXPECT_TRUE(w.checker.ok()) << w.checker.report();
}

TEST(ClusterClient, MoveOverlappingTrafficKeepsOracleClean) {
  ClusterWorld w(sharded(4));
  auto& c = w.make_client(0);
  int shard = w.cluster.snapshot()->route("hot");
  int src = w.cluster.snapshot()->group_of(shard);
  int dst = (src + 1) % w.cluster.num_groups();
  Status move_result = Status::Err(OpStatus::Timeout);

  bool ok = w.runner.run([&]() -> sim::Task<void> {
    sim::spawn(w.sim, do_move(&w.cluster, shard, dst, &move_result));
    for (int i = 0; i < 20; ++i) {
      auto ref = co_await c.create_lock_ref("hot");
      CO_ASSERT_TRUE(ref.ok());
      CO_ASSERT_TRUE(
          (co_await c.acquire_lock_blocking("hot", ref.value())).ok());
      CO_ASSERT_TRUE((co_await c.critical_put("hot", ref.value(),
                                              Value("v" + std::to_string(i))))
                         .ok());
      CO_ASSERT_TRUE((co_await c.release_lock("hot", ref.value())).ok());
    }
  });
  ASSERT_TRUE(ok);
  EXPECT_TRUE(move_result.ok());
  EXPECT_TRUE(w.checker.ok()) << w.checker.report();
  EXPECT_EQ(w.cluster.snapshot()->group_of(shard), dst);
}

TEST(ClusterBatch, SplitsAcrossShardsAndStitchesInEnqueueOrder) {
  ClusterWorld w(sharded(8));
  auto& c = w.make_client(0);
  Batch b(c);
  std::vector<size_t> put_idx;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // Interleave puts and gets over keys spanning several shards.
    for (int i = 0; i < 12; ++i) {
      Key key = "bk" + std::to_string(i);
      put_idx.push_back(b.put(key, Value("val" + std::to_string(i))));
    }
    CO_ASSERT_EQ(b.pending(), 12u);
    Status st = co_await b.flush();
    CO_ASSERT_TRUE(st.ok());
    CO_ASSERT_EQ(b.pending(), 0u);

    // A fresh batch after flush: reads come back in enqueue order.
    for (int i = 0; i < 12; ++i) b.get("bk" + std::to_string(i));
    CO_ASSERT_EQ(b.pending(), 12u);
    CO_ASSERT_TRUE((co_await b.flush()).ok());
  });
  ASSERT_TRUE(ok);
  ASSERT_EQ(b.results().size(), 12u);
  std::set<int> shards_hit;
  auto map = w.cluster.snapshot();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(b.results()[static_cast<size_t>(i)].status, OpStatus::Ok);
    EXPECT_EQ(b.results()[static_cast<size_t>(i)].value.data,
              "val" + std::to_string(i));
    shards_hit.insert(map->route("bk" + std::to_string(i)));
  }
  EXPECT_GT(shards_hit.size(), 1u) << "keys collapsed onto one shard";
  EXPECT_TRUE(w.checker.ok()) << w.checker.report();
}

TEST(ClusterClient, GetAllKeysMergesAcrossGroups) {
  ClusterWorld w(sharded(4));
  auto& c = w.make_client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      CO_ASSERT_TRUE(
          (co_await c.put("m" + std::to_string(i), Value("x"))).ok());
    }
    auto keys = co_await c.get_all_keys("m");
    CO_ASSERT_TRUE(keys.ok());
    CO_ASSERT_EQ(keys.value().size(), 10u);
    // Sorted and deduplicated.
    for (size_t i = 1; i < keys.value().size(); ++i) {
      CO_ASSERT_TRUE(keys.value()[i - 1] < keys.value()[i]);
    }
  });
  ASSERT_TRUE(ok);
}

TEST(ClusterClient, SharedGroupsServeMultipleShards) {
  // 8 shards on 2 groups: routing still works, and a move between the two
  // groups re-homes exactly one shard's keys.
  ClusterWorld w(sharded(8, 2));
  EXPECT_EQ(w.cluster.num_groups(), 2);
  auto& c = w.make_client(1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      CO_ASSERT_TRUE(
          (co_await c.put("s" + std::to_string(i), Value("y"))).ok());
    }
    int shard = w.cluster.snapshot()->route("s3");
    int src = w.cluster.snapshot()->group_of(shard);
    CO_ASSERT_TRUE((co_await w.cluster.move_shard(shard, 1 - src)).ok());
    auto got = co_await c.get("s3");
    CO_ASSERT_TRUE(got.ok());
    CO_ASSERT_EQ(got.value().data, "y");
  });
  ASSERT_TRUE(ok);
}

TEST(ClusterMetrics, ExportsPerGroupCounters) {
  ClusterWorld w(sharded(4));
  auto& c = w.make_client(0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("mk");
    CO_ASSERT_TRUE(ref.ok());
    CO_ASSERT_TRUE((co_await c.acquire_lock_blocking("mk", ref.value())).ok());
    CO_ASSERT_TRUE(
        (co_await c.critical_put("mk", ref.value(), Value("1"))).ok());
    CO_ASSERT_TRUE((co_await c.release_lock("mk", ref.value())).ok());
  });
  ASSERT_TRUE(ok);
  obs::MetricsRegistry reg;
  w.cluster.export_metrics(reg);
  EXPECT_EQ(reg.counter("cluster.shards").value, 4u);
  EXPECT_EQ(reg.counter("cluster.groups").value, 4u);
  EXPECT_EQ(reg.counter("cluster.map_epoch").value, 0u);
  EXPECT_EQ(reg.counter("cluster.critical_puts").value, 1u);
  EXPECT_GT(reg.counter("cluster.admitted").value, 0u);
  uint64_t per_group = 0;
  for (int g = 0; g < 4; ++g) {
    per_group +=
        reg.counter("cluster.g" + std::to_string(g) + ".critical_puts").value;
  }
  EXPECT_EQ(per_group, 1u);
}

}  // namespace
}  // namespace music::cluster
