// Consistent-hash ring edge cases: empty ring, single shard, virtual-node
// boundary ownership, wraparound, full coverage and the pinned layout
// checksum (the ring is part of the persistent routing contract — an
// accidental layout change would re-home keys across shard moves).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "cluster/ring.h"

namespace music::cluster {
namespace {

TEST(Ring, EmptyRingRoutesNowhere) {
  Ring empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.shard_of("anything"), -1);
  EXPECT_EQ(empty.shard_for_hash(42), -1);
  // Degenerate constructions collapse to the empty ring, not UB.
  EXPECT_TRUE(Ring(0, 64).empty());
  EXPECT_TRUE(Ring(4, 0).empty());
}

TEST(Ring, SingleShardOwnsEveryKey) {
  Ring one(1, 64);
  EXPECT_FALSE(one.empty());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(one.shard_of("k" + std::to_string(i)), 0);
  }
}

TEST(Ring, VirtualNodeBoundaryKeyBelongsToThatPoint) {
  // A key hashing EXACTLY onto a virtual node's ring position is owned by
  // that virtual node's shard (lower_bound semantics: first point with
  // hash >= key hash).
  Ring ring(8, 16);
  for (int s = 0; s < 8; ++s) {
    for (int v = 0; v < 16; ++v) {
      EXPECT_EQ(ring.shard_for_hash(Ring::point_hash(s, v)), s)
          << "shard " << s << " vnode " << v;
    }
  }
}

TEST(Ring, WrapsPastTheLastPoint) {
  Ring ring(8, 16);
  // No virtual node hashes to UINT64_MAX (FNV of short strings), so the
  // max hash falls past every point and wraps to the first one — the same
  // owner hash 0 resolves to.
  EXPECT_EQ(ring.shard_for_hash(~0ull), ring.shard_for_hash(0));
}

TEST(Ring, EveryShardOwnsSomeKeys) {
  Ring ring(8, 64);
  std::set<int> seen;
  for (int i = 0; i < 4096; ++i) {
    int s = ring.shard_of("key" + std::to_string(i));
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 8);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Ring, RoutingIsPureFunctionOfShardsAndVnodes) {
  Ring a(16, 64);
  Ring b(16, 64);
  for (int i = 0; i < 1000; ++i) {
    std::string k = "k" + std::to_string(i);
    EXPECT_EQ(a.shard_of(k), b.shard_of(k));
  }
  EXPECT_EQ(a.layout_checksum(), b.layout_checksum());
  // Different geometry, different layout.
  EXPECT_NE(a.layout_checksum(), Ring(16, 32).layout_checksum());
  EXPECT_NE(a.layout_checksum(), Ring(8, 64).layout_checksum());
}

TEST(Ring, LayoutChecksumMatchesPinnedGolden) {
  // Pinned layout: regenerate with MUSIC_REGEN_GOLDENS=1 ./cluster_ring_test
  // after a DELIBERATE hash/layout change (which re-homes every key).
  struct Golden {
    int shards;
    int vnodes;
    uint64_t checksum;
  };
  constexpr Golden kGoldens[] = {
      {1, 64, 0xc69d74c6f721d34aull},
      {4, 64, 0xddabc202fbb3e599ull},
      {16, 64, 0x17899e5e43048f01ull},
      {64, 64, 0x8747fa9faa10c2bcull},
  };
  bool regen = std::getenv("MUSIC_REGEN_GOLDENS") != nullptr;
  for (const Golden& g : kGoldens) {
    uint64_t got = Ring(g.shards, g.vnodes).layout_checksum();
    if (regen) {
      std::printf("      {%d, %d, 0x%016llxull},\n", g.shards, g.vnodes,
                  static_cast<unsigned long long>(got));
      continue;
    }
    EXPECT_EQ(got, g.checksum) << g.shards << " shards";
  }
}

}  // namespace
}  // namespace music::cluster
