// Shard moves under nemesis faults: across 8 seeds, a shard is moved while
// a store replica of the source group is down and a client hammers keys in
// the moving shard.  The acceptance bar from the cluster design notes:
//   - zero ECF violations (lenient stale-grant mode, as every faulted
//     scenario cell runs),
//   - every in-flight op resolves Ok, retryable (Nack/Timeout) or
//     WrongShard — never an unexplained terminal status,
//   - rows quorum-acked before the move are readable, bit-for-bit, from
//     the destination group afterwards (no silent loss).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/cluster.h"
#include "cluster/world.h"
#include "sim/task.h"

namespace music::cluster {
namespace {

using test::ClusterWorld;
using test::ClusterWorldOptions;

/// Delayed shard move, spawned alongside the workload.
sim::Task<void> delayed_move(ClusterWorld* w, int shard, int to,
                             sim::Duration delay, Status* out, bool* done) {
  co_await sim::sleep_for(w->sim, delay);
  *out = co_await w->cluster.move_shard(shard, to);
  *done = true;
}

/// One nemesis window: a store replica of group `g` is down while the move
/// copies rows (move rounds retry transient failures until it heals).
sim::Task<void> fault_window(ClusterWorld* w, int g) {
  co_await sim::sleep_for(w->sim, sim::ms(20));
  w->cluster.set_down_store(g, 0, true, /*amnesia=*/false);
  co_await sim::sleep_for(w->sim, sim::ms(250));
  w->cluster.set_down_store(g, 0, false, /*amnesia=*/false);
}

/// Statuses an op may legally end with while the shard is in flight.
bool acceptable(OpStatus s) {
  return s == OpStatus::Ok || is_retryable(s) || s == OpStatus::WrongShard;
}

/// Full critical section writing `val` to `key`; returns the final status
/// of the first step that failed (or Ok).
sim::Task<OpStatus> write_section(Client* c, Key key, Value val) {
  auto ref = co_await c->create_lock_ref(key);
  if (!ref.ok()) co_return ref.status();
  Status acq = co_await c->acquire_lock_blocking(key, ref.value());
  if (!acq.ok()) {
    co_await c->remove_lock_ref(key, ref.value());
    co_return acq.status();
  }
  Status put = co_await c->critical_put(key, ref.value(), std::move(val));
  co_await c->release_lock(key, ref.value());
  co_return put.status();
}

/// Keys from the `stem<i>` family that the current ring routes to `shard`.
std::vector<Key> keys_in_shard(const Cluster& cluster, const std::string& stem,
                               int shard, size_t want) {
  std::vector<Key> out;
  auto map = cluster.snapshot();
  for (int i = 0; out.size() < want && i < 10000; ++i) {
    Key k = stem + std::to_string(i);
    if (map->route(k) == shard) out.push_back(k);
  }
  return out;
}

TEST(ClusterMove, NoSilentLossUnderFaultsAcrossEightSeeds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ClusterWorldOptions opt;
    opt.seed = seed;
    opt.cluster.shards = 4;
    ClusterWorld w(opt);
    w.checker.set_lenient_stale_grants(true);  // faulted run, like run.cc

    int shard = w.cluster.snapshot()->route("keep0");
    int src = w.cluster.snapshot()->group_of(shard);
    int dst = (src + 1) % w.cluster.num_groups();
    std::vector<Key> keep = keys_in_shard(w.cluster, "keep", shard, 4);
    std::vector<Key> hot = keys_in_shard(w.cluster, "hot", shard, 3);
    ASSERT_EQ(keep.size(), 4u) << "seed " << seed;
    ASSERT_EQ(hot.size(), 3u) << "seed " << seed;

    auto& c = w.make_client(0);
    Status move_result = Status::Err(OpStatus::Timeout);
    bool move_done = false;
    std::vector<OpStatus> outcomes;

    bool ran = w.runner.run([&]() -> sim::Task<void> {
      // Quorum-ack one row per keep-key BEFORE any fault or move; these
      // exact bytes must survive the move.
      for (const Key& k : keep) {
        OpStatus st = co_await write_section(&c, k, Value("stable:" + k));
        CO_ASSERT_EQ(st, OpStatus::Ok);
      }

      sim::spawn(w.sim, fault_window(&w, src));
      sim::spawn(w.sim, delayed_move(&w, shard, dst, sim::ms(50),
                                     &move_result, &move_done));

      // Hammer the moving shard while the fault window and copy overlap.
      for (int i = 0; i < 12; ++i) {
        const Key& k = hot[static_cast<size_t>(i) % hot.size()];
        OpStatus st = co_await write_section(
            &c, k, Value("w:" + std::to_string(i)));
        outcomes.push_back(st);
      }

      while (!move_done) co_await sim::sleep_for(w.sim, sim::ms(5));

      // Post-move: quorum-acked pre-move rows read back exactly from the
      // destination group.
      for (const Key& k : keep) {
        auto ref = co_await c.create_lock_ref(k);
        CO_ASSERT_TRUE(ref.ok());
        CO_ASSERT_TRUE(
            (co_await c.acquire_lock_blocking(k, ref.value())).ok());
        auto got = co_await c.critical_get(k, ref.value());
        CO_ASSERT_TRUE(got.ok());
        CO_ASSERT_EQ(got.value().data, "stable:" + k);
        CO_ASSERT_TRUE((co_await c.release_lock(k, ref.value())).ok());
      }
    });
    ASSERT_TRUE(ran) << "seed " << seed;
    EXPECT_TRUE(move_result.ok())
        << "seed " << seed << ": " << to_string(move_result.status());
    EXPECT_EQ(w.cluster.snapshot()->group_of(shard), dst) << "seed " << seed;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      EXPECT_TRUE(acceptable(outcomes[i]))
          << "seed " << seed << " op " << i << ": "
          << to_string(outcomes[i]);
    }
    EXPECT_TRUE(w.checker.ok()) << "seed " << seed << "\n"
                                << w.checker.report();
  }
}

TEST(ClusterMove, ConcurrentMoveOfTheSameShardConflicts) {
  ClusterWorldOptions opt;
  opt.cluster.shards = 2;
  ClusterWorld w2(opt);
  Status first = Status::Err(OpStatus::Timeout);
  bool first_done = false;
  bool ran = w2.runner.run([&]() -> sim::Task<void> {
    // Pin the first mover in its drain loop by holding an admitted op
    // open; otherwise an empty shard moves instantaneously.
    CO_ASSERT_TRUE(w2.cluster.admit(0, w2.cluster.snapshot()->epoch()).ok());
    sim::spawn(w2.sim, delayed_move(&w2, 0, 1, sim::ms(0), &first,
                                    &first_done));
    co_await sim::sleep_for(w2.sim, sim::ms(5));
    // Second mover loses while the first holds the shard frozen.
    Status second = co_await w2.cluster.move_shard(0, 1);
    CO_ASSERT_EQ(second.status(), OpStatus::Conflict);
    w2.cluster.complete(0);
    while (!first_done) co_await sim::sleep_for(w2.sim, sim::ms(5));
    CO_ASSERT_TRUE(first.ok());
  });
  ASSERT_TRUE(ran);
}

TEST(ClusterMove, MoveToTheCurrentOwnerIsANoOp) {
  ClusterWorldOptions opt;
  opt.cluster.shards = 2;
  ClusterWorld w(opt);
  int owner = w.cluster.snapshot()->group_of(0);
  uint64_t epoch_before = w.cluster.snapshot()->epoch();
  bool ran = w.runner.run([&]() -> sim::Task<void> {
    CO_ASSERT_TRUE((co_await w.cluster.move_shard(0, owner)).ok());
  });
  ASSERT_TRUE(ran);
  EXPECT_EQ(w.cluster.snapshot()->epoch(), epoch_before);
  EXPECT_EQ(w.cluster.stats().moves, 0u);
}

TEST(ClusterMove, RejectsOutOfRangeArguments) {
  ClusterWorldOptions opt;
  opt.cluster.shards = 2;
  ClusterWorld w(opt);
  bool ran = w.runner.run([&]() -> sim::Task<void> {
    CO_ASSERT_EQ((co_await w.cluster.move_shard(-1, 0)).status(),
                 OpStatus::Nack);
    CO_ASSERT_EQ((co_await w.cluster.move_shard(99, 0)).status(),
                 OpStatus::Nack);
    CO_ASSERT_EQ((co_await w.cluster.move_shard(0, 99)).status(),
                 OpStatus::Nack);
  });
  ASSERT_TRUE(ran);
}

}  // namespace
}  // namespace music::cluster
