// Determinism goldens for the SHARDED scenario runner.
//
// A shards-axis sweep (music/mscp x shards 1,4 on the local profile) pinned
// the same two ways as tests/scenario/scenario_golden_test.cc: every cell's
// checksum must be identical at 1 and 4 worker threads (a sharded world —
// ring routing, epoch gate, parallel batch fan-out and all — is still a
// pure function of its seed), and the checksums are pinned so a change to
// the ring layout, the admission gate or the cluster client's retry
// discipline shows up as a diff.
//
// Regenerate after a deliberate semantic change with:
//   MUSIC_REGEN_GOLDENS=1 ./cluster_golden_test
// and paste the printed table over kGoldens below.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/run.h"
#include "scenario/spec.h"

namespace music::scn {
namespace {

const char kSweep[] =
    "scenario cluster-golden\n"
    "seeds 2\n"
    "protocols music,mscp\n"
    "topology {\n"
    "  profiles local\n"
    "  shards 1,4\n"
    "}\n"
    "workload {\n"
    "  mixes 0\n"
    "  clients 3\n"
    "  keys 8\n"
    "  keying uniform\n"
    "  arrival closed\n"
    "  value 10\n"
    "  warmup 500ms\n"
    "  measure 2s\n"
    "}\n";

struct Golden {
  const char* label;
  uint64_t checksum;
};

// Captured from the initial cluster layer; regenerate (see header comment)
// when the sharded runner's semantics deliberately change.  The sh1 labels
// carry no "/sh" segment and run the classic single-group path — pinning
// them here guards the dispatch seam too.
constexpr Golden kGoldens[] = {
    {"music/local/mix0/c3/s1", 0xaed5cfab1ed7a757ull},
    {"music/local/mix0/c3/s2", 0xbf3c51e931abf63full},
    {"music/local/mix0/c3/sh4/s1", 0xb35ae0e625343f1full},
    {"music/local/mix0/c3/sh4/s2", 0x0b2cb9c1cca47c4bull},
    {"mscp/local/mix0/c3/s1", 0xf2de149396a8e44dull},
    {"mscp/local/mix0/c3/s2", 0x3e0d14c88037b288ull},
    {"mscp/local/mix0/c3/sh4/s1", 0xceda97e2740ce4fdull},
    {"mscp/local/mix0/c3/sh4/s2", 0x2618f74b676a9f0bull},
};

std::vector<CellOutcome> sweep(size_t threads) {
  auto spec = ScenarioSpec::parse(kSweep);
  EXPECT_TRUE(spec.has_value());
  RunOptions opt;
  opt.threads = threads;
  return run_sweep(*spec, opt);
}

TEST(ClusterGolden, ShardedChecksumsMatchPinnedTableAndThreadCount) {
  std::vector<CellOutcome> one = sweep(1);
  std::vector<CellOutcome> four = sweep(4);
  ASSERT_EQ(one.size(), std::size(kGoldens));
  ASSERT_EQ(four.size(), one.size());

  bool regen = std::getenv("MUSIC_REGEN_GOLDENS") != nullptr;
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(one[i].ok) << one[i].label << ": " << one[i].error;
    EXPECT_EQ(one[i].label, four[i].label);
    EXPECT_EQ(one[i].checksum(), four[i].checksum()) << one[i].label;

    if (regen) {
      std::printf("    {\"%s\", 0x%016llxull},\n", one[i].label.c_str(),
                  static_cast<unsigned long long>(one[i].checksum()));
      continue;
    }
    EXPECT_EQ(one[i].label, kGoldens[i].label);
    EXPECT_EQ(one[i].checksum(), kGoldens[i].checksum) << one[i].label;
  }
}

}  // namespace
}  // namespace music::scn
