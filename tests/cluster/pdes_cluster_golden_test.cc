// PDES over the sharded cluster layer: a 64-group / 8-site world whose
// fingerprint is pinned and must be bit-identical at 1/2/4/8 shard
// workers, plus live shard moves under PDES traffic (the schedule_main_at
// hop in move_shard) asserted ECF-clean and worker-count invariant.
//
// Keys are probed so every logical client only touches shards whose owning
// group is HOMED at the client's site: under PDES that keeps each shared
// core::MusicClient driven from a single site lane (client_at's fallback
// to another site's shared client would make two lanes race on it).  That
// is also the sane deployment — clients talk to co-located group members.
//
// Regenerate after a deliberate semantic change with:
//   MUSIC_REGEN_GOLDENS=1 ./cluster_pdes_golden_test
// and paste the printed row over kGolden below.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/cluster.h"
#include "cluster/world.h"
#include "sim/network.h"

namespace music::cluster {
namespace {

/// FNV-1a 64-bit; the fingerprint accumulator.
struct Fnv {
  uint64_t h = 0xcbf29ce484222325ull;
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  void mix(const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    mix(s.size());
  }
};

/// First `want` keys (probing "k<salt>", "k<salt+1>", ...) whose owning
/// group is homed at `site` under the CURRENT shard map.
std::vector<Key> keys_homed_at(test::ClusterWorld& w, int site, int salt,
                               int want) {
  auto map = w.cluster.snapshot();
  std::vector<Key> out;
  for (int i = salt; static_cast<int>(out.size()) < want && i < salt + 4096;
       ++i) {
    Key key = "k";
    key += std::to_string(i);
    int g = map->group_of(map->route(key));
    for (int k = 0; k < 3; ++k) {
      if (w.cluster.home_site(g, k) == site) {
        out.push_back(key);
        break;
      }
    }
  }
  return out;
}

/// One logical client's life: checked critical sections over its keys,
/// logged into its OWN Fnv (per-client logs merged in cid order keep the
/// fingerprint worker-count invariant; a shared log would race).
sim::Task<void> client_loop(test::ClusterWorld& w, cluster::Client& c, int cid,
                            std::vector<Key> keys, Fnv& log) {
  for (int round = 0; round < 2; ++round) {
    for (const Key& key : keys) {
      auto ref = co_await c.create_lock_ref(key);
      log.mix(static_cast<uint64_t>(w.sim.now()));
      if (!ref.ok()) continue;
      auto acq = co_await c.acquire_lock_blocking(key, ref.value());
      log.mix(static_cast<uint64_t>(acq.status()));
      if (!acq.ok()) continue;
      std::string payload = "c";
      payload += std::to_string(cid);
      payload += "r";
      payload += std::to_string(round);
      auto put = co_await c.critical_put(key, ref.value(), Value(payload));
      log.mix(static_cast<uint64_t>(put.status()));
      auto got = co_await c.critical_get(key, ref.value());
      log.mix(static_cast<uint64_t>(got.status()));
      if (got.ok()) log.mix(got.value().data);
      auto rel = co_await c.release_lock(key, ref.value());
      log.mix(static_cast<uint64_t>(rel.status()));
      log.mix(static_cast<uint64_t>(w.sim.now()));
    }
  }
}

struct RunOutcome {
  uint64_t events_run;
  uint64_t fingerprint;
};

/// The 64-group / 8-site world: every shard its own group, group homes
/// staggered round-robin across 8 sites, 16 logical clients (2 per site).
RunOutcome run_big_cluster(uint64_t seed, size_t workers) {
  test::ClusterWorldOptions opt;
  opt.seed = seed;
  opt.cluster.shards = 64;
  opt.cluster.groups = 0;  // one group per shard
  opt.cluster.sites = 8;
  opt.net.profile = sim::LatencyProfile::uniform(8, 40.0, 0.2);
  opt.pdes_workers = workers;
  test::ClusterWorld w(opt);
  EXPECT_TRUE(w.sim.pdes());
  EXPECT_EQ(w.sim.pdes_sites(), 8);

  constexpr int kClients = 16;
  std::vector<Fnv> logs(kClients);
  for (int cid = 0; cid < kClients; ++cid) {
    int site = cid % 8;
    cluster::Client& c = w.make_client(site);
    sim::spawn(w.sim,
               client_loop(w, c, cid, keys_homed_at(w, site, cid * 37, 3),
                           logs[static_cast<size_t>(cid)]));
  }
  w.sim.run_until(sim::sec(30));

  EXPECT_TRUE(w.checker.ok()) << w.checker.report();
  Fnv fp;
  for (const Fnv& log : logs) fp.mix(log.h);
  fp.mix(w.sim.events_run());
  fp.mix(static_cast<uint64_t>(w.sim.now()));
  fp.mix(w.net.messages_sent());
  fp.mix(w.net.wan_messages_sent());
  fp.mix(w.net.bytes_sent());
  fp.mix(w.cluster.stats().admitted);
  fp.mix(w.cluster.stats().wrong_shard_rejects);
  fp.mix(w.cluster.total_critical_puts());
  fp.mix(w.checker.violations().size());
  return {w.sim.events_run(), fp.h};
}

struct Golden {
  uint64_t seed;
  uint64_t events_run;
  uint64_t fingerprint;
};

// Captured at 1 worker; every other worker count must reproduce the row
// bit-identically.
constexpr Golden kGolden = {1, 38134, 0xeca8e456c879fb05ull};

constexpr size_t kWorkerConfigs[] = {1, 2, 4, 8};

TEST(PdesClusterGolden, SixtyFourGroupsAcrossEightLanesAreWorkerInvariant) {
  bool regen = std::getenv("MUSIC_REGEN_GOLDENS") != nullptr;
  RunOutcome base{0, 0};
  for (size_t wi = 0; wi < std::size(kWorkerConfigs); ++wi) {
    RunOutcome out = run_big_cluster(kGolden.seed, kWorkerConfigs[wi]);
    if (wi == 0) {
      base = out;
      if (regen) {
        std::printf("    {%llu, %llu, 0x%016llxull},\n",
                    static_cast<unsigned long long>(kGolden.seed),
                    static_cast<unsigned long long>(out.events_run),
                    static_cast<unsigned long long>(out.fingerprint));
      } else {
        EXPECT_EQ(out.events_run, kGolden.events_run);
        EXPECT_EQ(out.fingerprint, kGolden.fingerprint);
      }
      continue;
    }
    EXPECT_EQ(out.events_run, base.events_run)
        << "workers " << kWorkerConfigs[wi];
    EXPECT_EQ(out.fingerprint, base.fingerprint)
        << "workers " << kWorkerConfigs[wi];
  }
}

/// Background mover: sequential shard moves, spaced out, each to the next
/// group.  Runs while client traffic is live, exercising move_shard's
/// main-lane hops under PDES.
sim::Task<void> mover(test::ClusterWorld& w, int moves, Fnv& log) {
  for (int i = 0; i < moves; ++i) {
    co_await sim::sleep_for(w.sim, sim::sec(2));
    int shard = i;
    int to = (w.cluster.snapshot()->group_of(shard) + 1) %
             w.cluster.num_groups();
    Status st = co_await w.cluster.move_shard(shard, to);
    log.mix(static_cast<uint64_t>(st.status()));
    log.mix(static_cast<uint64_t>(w.sim.now()));
  }
}

/// Shard moves under PDES traffic on the classic 3-site layout (every
/// group homed at every site, so shared core clients never cross lanes no
/// matter where shards move).
uint64_t run_moves_under_pdes(size_t workers) {
  test::ClusterWorldOptions opt;
  opt.seed = 11;
  opt.cluster.shards = 8;
  opt.cluster.groups = 0;
  opt.pdes_workers = workers;  // default 3-site uniform profile
  test::ClusterWorld w(opt);
  EXPECT_TRUE(w.sim.pdes());

  constexpr int kClients = 6;
  std::vector<Fnv> logs(kClients + 1);
  for (int cid = 0; cid < kClients; ++cid) {
    int site = cid % 3;
    cluster::Client& c = w.make_client(site);
    std::vector<Key> keys;
    for (int k = 0; k < 3; ++k) {
      Key key = "m";
      key += std::to_string((cid + 2 * k) % 8);  // overlaps moving shards
      keys.push_back(key);
    }
    sim::spawn(w.sim, client_loop(w, c, cid, std::move(keys),
                                  logs[static_cast<size_t>(cid)]));
  }
  sim::spawn(w.sim, mover(w, 3, logs[kClients]));
  w.sim.run_until(sim::sec(30));

  EXPECT_TRUE(w.checker.ok()) << w.checker.report();
  EXPECT_EQ(w.cluster.stats().moves.load(), 3u);
  Fnv fp;
  for (const Fnv& log : logs) fp.mix(log.h);
  fp.mix(w.sim.events_run());
  fp.mix(w.cluster.stats().admitted);
  fp.mix(w.cluster.stats().wrong_shard_rejects);
  fp.mix(w.cluster.stats().moved_rows);
  return fp.h;
}

TEST(PdesClusterMoves, LiveMovesUnderTrafficAreEcfCleanAndInvariant) {
  uint64_t one = run_moves_under_pdes(1);
  EXPECT_EQ(one, run_moves_under_pdes(3));
}

}  // namespace
}  // namespace music::cluster
