// Shared fixture for cluster-layer tests: a sharded MUSIC deployment
// (cluster::Cluster over the sim fabric) plus the TaskRunner idiom from
// tests/util/world.h.
#pragma once

#include <memory>
#include <vector>

#include "cluster/client.h"
#include "cluster/cluster.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "util/world.h"
#include "verify/oracle.h"

namespace music::test {

struct ClusterWorldOptions {
  uint64_t seed = 1;
  cluster::ClusterConfig cluster{};
  /// > 0 switches the world to conservative PDES with this many site-lane
  /// workers before the Network is built (lookahead derived from the
  /// profile).  0 = classic kernel; existing tests and goldens unaffected.
  size_t pdes_workers = 0;

  ClusterWorldOptions() {
    // The fast co-located profile: cluster tests exercise routing and
    // moves, not WAN latency shape.
    net.profile = sim::LatencyProfile::uniform(3, 1.0, 0.2);
  }

  sim::NetworkConfig net{};
};

/// A sharded deployment plus one ECF checker shared by all shard-aware
/// clients made through make_client().
class ClusterWorld {
 public:
  explicit ClusterWorld(ClusterWorldOptions opt = ClusterWorldOptions())
      : options(std::move(opt)),
        sim(options.seed),
        net(sim, [this] {
          // enable_pdes must precede Network construction (the net arms
          // per-lane delivery state).
          if (options.pdes_workers > 0) {
            sim::Simulation::PdesOptions po;
            po.sites = options.net.profile.num_sites();
            po.workers = options.pdes_workers;
            po.lookahead = sim::Network::conservative_lookahead(options.net);
            sim.enable_pdes(po);
          }
          return options.net;
        }()),
        cluster(sim, net, options.cluster),
        checker(sim),
        runner(sim) {}

  cluster::Client& make_client(int site) {
    clients.push_back(
        std::make_unique<cluster::Client>(cluster, site, &checker));
    return *clients.back();
  }

  ClusterWorldOptions options;
  sim::Simulation sim;
  sim::Network net;
  cluster::Cluster cluster;
  verify::EcfChecker checker;
  std::vector<std::unique_ptr<cluster::Client>> clients;
  TaskRunner runner;
};

}  // namespace music::test
