// Shared fixture for cluster-layer tests: a sharded MUSIC deployment
// (cluster::Cluster over the sim fabric) plus the TaskRunner idiom from
// tests/util/world.h.
#pragma once

#include <memory>
#include <vector>

#include "cluster/client.h"
#include "cluster/cluster.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "util/world.h"
#include "verify/oracle.h"

namespace music::test {

struct ClusterWorldOptions {
  uint64_t seed = 1;
  cluster::ClusterConfig cluster{};

  ClusterWorldOptions() {
    // The fast co-located profile: cluster tests exercise routing and
    // moves, not WAN latency shape.
    net.profile = sim::LatencyProfile::uniform(3, 1.0, 0.2);
  }

  sim::NetworkConfig net{};
};

/// A sharded deployment plus one ECF checker shared by all shard-aware
/// clients made through make_client().
class ClusterWorld {
 public:
  explicit ClusterWorld(ClusterWorldOptions opt = ClusterWorldOptions())
      : options(std::move(opt)),
        sim(options.seed),
        net(sim, options.net),
        cluster(sim, net, options.cluster),
        checker(sim),
        runner(sim) {}

  cluster::Client& make_client(int site) {
    clients.push_back(
        std::make_unique<cluster::Client>(cluster, site, &checker));
    return *clients.back();
  }

  ClusterWorldOptions options;
  sim::Simulation sim;
  sim::Network net;
  cluster::Cluster cluster;
  verify::EcfChecker checker;
  std::vector<std::unique_ptr<cluster::Client>> clients;
  TaskRunner runner;
};

}  // namespace music::test
