// Unit tests for the pure Paxos acceptor rules underlying LWTs.
#include "paxos/paxos.h"

#include <gtest/gtest.h>

#include <string>

namespace music::paxos {
namespace {

using StrAcceptor = Acceptor<std::string>;

TEST(Ballot, EncodesRoundAndProposerWithoutTies) {
  EXPECT_LT(make_ballot(1, 3), make_ballot(2, 0));
  EXPECT_LT(make_ballot(1, 1), make_ballot(1, 2));
  EXPECT_EQ(ballot_round(make_ballot(7, 5)), 7);
}

TEST(Acceptor, PromisesIncreasingBallots) {
  StrAcceptor a;
  auto r1 = a.on_prepare(make_ballot(1, 0));
  EXPECT_TRUE(r1.promised);
  EXPECT_EQ(r1.promised_ballot, make_ballot(1, 0));
  auto r2 = a.on_prepare(make_ballot(2, 0));
  EXPECT_TRUE(r2.promised);
}

TEST(Acceptor, RefusesStaleOrEqualPrepares) {
  StrAcceptor a;
  a.on_prepare(make_ballot(5, 0));
  auto stale = a.on_prepare(make_ballot(4, 0));
  EXPECT_FALSE(stale.promised);
  EXPECT_EQ(stale.promised_ballot, make_ballot(5, 0));  // hint for the loser
  auto equal = a.on_prepare(make_ballot(5, 0));
  EXPECT_FALSE(equal.promised);
}

TEST(Acceptor, AcceptsAtOrAbovePromise) {
  StrAcceptor a;
  a.on_prepare(make_ballot(3, 0));
  auto acc = a.on_accept({make_ballot(3, 0), "v"});
  EXPECT_TRUE(acc.accepted);
  // A higher accept also succeeds (implicit promise).
  auto acc2 = a.on_accept({make_ballot(4, 1), "w"});
  EXPECT_TRUE(acc2.accepted);
  EXPECT_EQ(a.promised(), make_ballot(4, 1));
}

TEST(Acceptor, RejectsAcceptBelowPromise) {
  StrAcceptor a;
  a.on_prepare(make_ballot(9, 0));
  auto acc = a.on_accept({make_ballot(8, 0), "v"});
  EXPECT_FALSE(acc.accepted);
  EXPECT_FALSE(a.accepted().has_value());
}

TEST(Acceptor, PrepareExposesInProgressProposal) {
  // The crux of Cassandra's LWT replay: a new coordinator must learn of an
  // accepted-but-uncommitted proposal and finish it first.
  StrAcceptor a;
  a.on_prepare(make_ballot(1, 0));
  a.on_accept({make_ballot(1, 0), "orphan"});
  auto r = a.on_prepare(make_ballot(2, 1));
  EXPECT_TRUE(r.promised);
  ASSERT_TRUE(r.in_progress.has_value());
  EXPECT_EQ(r.in_progress->value, "orphan");
  EXPECT_EQ(r.in_progress->ballot, make_ballot(1, 0));
}

TEST(Acceptor, CommitClearsInProgressSlot) {
  StrAcceptor a;
  a.on_accept({make_ballot(1, 0), "v"});
  a.on_commit(make_ballot(1, 0));
  EXPECT_FALSE(a.accepted().has_value());
  auto r = a.on_prepare(make_ballot(2, 0));
  EXPECT_FALSE(r.in_progress.has_value());
}

TEST(Acceptor, CommitOfOlderBallotKeepsNewerAccepted) {
  StrAcceptor a;
  a.on_accept({make_ballot(5, 0), "newer"});
  a.on_commit(make_ballot(4, 0));  // commit of an older decision
  ASSERT_TRUE(a.accepted().has_value());
  EXPECT_EQ(a.accepted()->value, "newer");
}

TEST(Acceptor, SafetyAcrossCompetingProposers) {
  // Once a value is accepted by the acceptor, a competing proposer that
  // prepares at a higher ballot must observe it — the invariant Paxos
  // safety rests on.
  StrAcceptor a;
  a.on_prepare(make_ballot(1, 0));
  EXPECT_TRUE(a.on_accept({make_ballot(1, 0), "A"}).accepted);
  auto p2 = a.on_prepare(make_ballot(2, 1));
  ASSERT_TRUE(p2.in_progress.has_value());
  EXPECT_EQ(p2.in_progress->value, "A");
  // Old proposer's late accept at ballot 1 is now refused.
  EXPECT_FALSE(a.on_accept({make_ballot(1, 0), "A2"}).accepted);
}

}  // namespace
}  // namespace music::paxos
