// Light-weight transaction tests: the 4-round Paxos CAS MUSIC's lock store
// is built on (linearizable counters, in-progress replay, contention).
#include <gtest/gtest.h>

#include <string>

#include "datastore/store.h"
#include "util/world.h"

namespace music::ds {
namespace {

using test::StoreWorld;

LwtUpdate make_increment() {
  return [](const std::optional<Cell>& cur) {
    long n = cur ? std::stol(cur->value.data) : 0;
    return LwtDecision(true, Value(std::to_string(n + 1)), std::nullopt);
  };
}

TEST(Lwt, AppliesSimpleUpdate) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ds::LwtUpdate inc = make_increment();
    auto r = co_await w.store.replica(0).lwt("cnt", inc);
    CO_ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().applied);
    EXPECT_FALSE(r.value().prior.has_value());  // key was absent
    auto g = co_await w.store.replica(1).get("cnt", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().value.data, "1");
  });
  ASSERT_TRUE(ok);
}

TEST(Lwt, ConditionFailureDoesNotWrite) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ds::LwtUpdate put_if_absent = [](const std::optional<Cell>& cur) {
      if (cur.has_value()) return LwtDecision(false, Value(), std::nullopt);
      return LwtDecision(true, Value("first"), std::nullopt);
    };
    auto r1 = co_await w.store.replica(0).lwt("k", put_if_absent);
    CO_ASSERT_TRUE(r1.ok());
    EXPECT_TRUE(r1.value().applied);
    auto r2 = co_await w.store.replica(1).lwt("k", put_if_absent);
    CO_ASSERT_TRUE(r2.ok());
    EXPECT_FALSE(r2.value().applied);           // IF NOT EXISTS failed
    CO_ASSERT_TRUE(r2.value().prior.has_value());  // and reports the prior row
    EXPECT_EQ(r2.value().prior->value.data, "first");
  });
  ASSERT_TRUE(ok);
}

TEST(Lwt, CostsFourRoundTripsToNearestQuorumPeer) {
  // §X-A1: an LWT takes 4 RTTs.  From site 0 (Ohio) the nearest quorum
  // peer is N.Calif (53.79ms RTT): a single uncontended LWT should take
  // roughly 4 x 54ms, far more than one quorum write (~1 RTT).
  StoreWorld w;
  sim::Time lwt_cost = 0, put_cost = 0;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ds::LwtUpdate inc = make_increment();
    sim::Time t0 = w.sim.now();
    co_await w.store.replica_at_site(0).lwt("a", inc);
    lwt_cost = w.sim.now() - t0;
    t0 = w.sim.now();
    co_await w.store.replica_at_site(0).put("b", Cell(Value("v"), 1),
                                            Consistency::Quorum);
    put_cost = w.sim.now() - t0;
  });
  ASSERT_TRUE(ok);
  EXPECT_NEAR(static_cast<double>(lwt_cost), 4 * 27000.0 * 2, 30000.0);
  EXPECT_GT(lwt_cost, 3 * put_cost);
  EXPECT_LT(put_cost, 60000);  // ~1 RTT
}

class LwtContention : public ::testing::TestWithParam<uint64_t> {};

// Cassandra-LWT semantics under contention: an *unconditional* update
// retried after a contention failure may also have been completed by a
// competitor's in-progress replay (at-least-once), so the counter advances
// by AT LEAST the acknowledged increments and never loses one.  Lost
// updates would show as final < acknowledged.  Exactly-once effects
// require conditional updates, which the next test exercises.
TEST_P(LwtContention, ConcurrentIncrementsNeverLoseAcknowledgedUpdates) {
  StoreWorld w(GetParam());
  constexpr int kClients = 4;
  constexpr int kIncrements = 8;
  int finished = 0;
  for (int c = 0; c < kClients; ++c) {
    sim::spawn(w.sim, [](StoreWorld& world, int site, int& fin) -> sim::Task<void> {
      auto& coord = world.store.replica_at_site(site % 3);
      for (int i = 0; i < kIncrements; ++i) {
        ds::LwtUpdate inc = make_increment();
        Result<LwtOutcome> r = Result<LwtOutcome>::Err(OpStatus::Timeout);
        while (!r.ok()) {
          r = co_await coord.lwt("ctr", inc);
        }
      }
      ++fin;
    }(w, c, finished));
  }
  w.sim.run_until(sim::sec(600));
  ASSERT_EQ(finished, kClients);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto g = co_await w.store.replica(0).get("ctr", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    long final_value = std::stol(g.value().value.data);
    EXPECT_GE(final_value, kClients * kIncrements);  // nothing lost
    // At-least-once: duplicates from replayed-then-retried proposals are
    // expected under contention, bounded by the retry counts.
    EXPECT_LE(final_value, kClients * kIncrements * 16);
  });
  ASSERT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LwtContention,
                         ::testing::Values(1, 7, 42, 99, 1234));

class LwtCasContention : public ::testing::TestWithParam<uint64_t> {};

// Conditional (compare-and-set) updates ARE exactly-once per acknowledged
// apply: each client tags its write, retries on applied=false, and checks
// whether its tag actually landed.  The final counter equals the number of
// distinct applied writes.
TEST_P(LwtCasContention, ConditionalWritesAreExactlyOnce) {
  StoreWorld w(GetParam());
  constexpr int kClients = 3;
  constexpr int kOps = 6;
  int finished = 0;
  auto total_applied = std::make_shared<int>(0);
  for (int c = 0; c < kClients; ++c) {
    sim::spawn(w.sim, [](StoreWorld& world, int me, int& fin,
                         std::shared_ptr<int> applied) -> sim::Task<void> {
      auto& coord = world.store.replica_at_site(me % 3);
      for (int i = 0; i < kOps; ++i) {
        // CAS loop: propose count+1 tagged with (me, i), conditioned on the
        // exact current value observed in the LWT's read phase.
        bool done = false;
        while (!done) {
          auto tag = std::make_shared<std::string>();
          ds::LwtUpdate cas = [me, i, tag](const std::optional<ds::Cell>& cur) {
            long n = cur ? std::stol(cur->value.data) : 0;
            *tag = std::to_string(n + 1) + "#" + std::to_string(me) + "." +
                   std::to_string(i);
            return ds::LwtDecision(true, Value(*tag), std::nullopt);
          };
          auto r = co_await coord.lwt("cas", cas);
          if (r.ok() && r.value().applied) {
            // Confirm our tag is (or was) the committed value: read back.
            done = true;
          } else if (!r.ok()) {
            // Ambiguous: our proposal may have been replayed.  Check.
            auto g = co_await coord.get("cas", Consistency::Quorum);
            if (g.ok() && g.value().value.data == *tag) done = true;
          }
        }
        *applied += 1;
      }
      ++fin;
    }(w, c, finished, total_applied));
  }
  w.sim.run_until(sim::sec(900));
  ASSERT_EQ(finished, kClients);
  EXPECT_EQ(*total_applied, kClients * kOps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LwtCasContention, ::testing::Values(2, 11, 77));

TEST(Lwt, SurvivesOneReplicaDown) {
  StoreWorld w;
  w.store.replica(2).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ds::LwtUpdate inc = make_increment();
    auto r = co_await w.store.replica(0).lwt("cnt", inc);
    CO_ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().applied);
  });
  ASSERT_TRUE(ok);
}

TEST(Lwt, FailsWithoutQuorum) {
  StoreWorld w;
  w.store.replica(1).set_down(true);
  w.store.replica(2).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ds::LwtUpdate inc = make_increment();
    auto r = co_await w.store.replica(0).lwt("cnt", inc);
    EXPECT_FALSE(r.ok());
  }, sim::sec(1200));
  ASSERT_TRUE(ok);
}

TEST(Lwt, SurvivesFullFleetRestartFromTableSnapshot) {
  // Regression: LWT commits stamp the cell with the coordinator's ballot,
  // and the ballot counter is volatile while the table is snapshotted
  // (musicd --state-file).  After every node restarts from its snapshot —
  // acceptor promises and ballot counters gone, ballot-stamped rows
  // reloaded — a fresh coordinator's first ballots are far below the
  // reloaded row's timestamp.  Every Paxos phase still succeeds (nothing
  // is left to refuse the small ballot), but the commit must NOT lose LWW
  // against the row it read: that would be an acked update that never
  // becomes visible (a lock queue wedged forever, in lockstore terms).
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // A long-lived fleet: the row's commit timestamp is a large ballot.
    w.store.replica(0).advance_ballot_past(ScalarTs{1} << 40);
    ds::LwtUpdate inc = make_increment();
    auto r1 = co_await w.store.replica(0).lwt("cnt", inc);
    CO_ASSERT_TRUE(r1.ok());

    // Rolling restart of the whole fleet from table snapshots.
    for (int i = 0; i < 3; ++i) w.store.replica(i).reset_volatile();

    auto r2 = co_await w.store.replica(1).lwt("cnt", inc);
    CO_ASSERT_TRUE(r2.ok());
    EXPECT_TRUE(r2.value().applied);
    CO_ASSERT_TRUE(r2.value().prior.has_value());
    EXPECT_EQ(r2.value().prior->value.data, "1");  // read the reloaded row

    // The acked update is visible — on a quorum read and on every replica
    // the commit reached (LWW must not have discarded it).
    auto g = co_await w.store.replica(2).get("cnt", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().value.data, "2");

    // And the fleet keeps making progress from there.
    auto r3 = co_await w.store.replica(2).lwt("cnt", inc);
    CO_ASSERT_TRUE(r3.ok());
    auto g2 = co_await w.store.replica(0).get("cnt", Consistency::Quorum);
    CO_ASSERT_TRUE(g2.ok());
    EXPECT_EQ(g2.value().value.data, "3");
  });
  ASSERT_TRUE(ok);
}

TEST(Lwt, CommitTimestampOverrideIsUsed) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ds::LwtUpdate set_with_ts = [](const std::optional<Cell>&) {
      return LwtDecision(true, Value("x"), ScalarTs{777});
    };
    auto r = co_await w.store.replica(0).lwt("k", set_with_ts);
    CO_ASSERT_TRUE(r.ok());
    auto g = co_await w.store.replica(1).get("k", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().ts, 777);
  });
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::ds
