// Data-store tests: last-write-wins, consistency levels, read repair,
// placement, scans.
#include "datastore/store.h"

#include <gtest/gtest.h>

#include <set>

#include "util/world.h"

namespace music::ds {
namespace {

using test::StoreWorld;

TEST(ApplyWrite, LastWriteWinsByTimestamp) {
  StoreWorld w;
  auto& r = w.store.replica(0);
  EXPECT_TRUE(r.apply_write("k", Cell(Value("a"), 10)));
  EXPECT_FALSE(r.apply_write("k", Cell(Value("b"), 5)));    // older: rejected
  EXPECT_FALSE(r.apply_write("k", Cell(Value("c"), 10)));   // tie: rejected
  EXPECT_TRUE(r.apply_write("k", Cell(Value("d"), 11)));
  EXPECT_EQ(r.local_read("k")->value.data, "d");
}

TEST(QuorumOps, WriteThenReadReturnsValue) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await w.store.replica_at_site(0).put(
        "k", Cell(Value("v1"), 100), Consistency::Quorum);
    EXPECT_TRUE(st.ok());
    auto g = co_await w.store.replica_at_site(1).get("k", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().value.data, "v1");
    EXPECT_EQ(g.value().ts, 100);
  });
  ASSERT_TRUE(ok);
}

TEST(QuorumOps, MissingKeyIsNotFound) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto g = co_await w.store.replica(0).get("nope", Consistency::Quorum);
    EXPECT_EQ(g.status(), OpStatus::NotFound);
  });
  ASSERT_TRUE(ok);
}

TEST(QuorumOps, StaleTimestampDoesNotOverwrite) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await w.store.replica(0).put("k", Cell(Value("new"), 100),
                                    Consistency::Quorum);
    co_await w.store.replica(1).put("k", Cell(Value("old"), 50),
                                    Consistency::Quorum);
    auto g = co_await w.store.replica(2).get("k", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().value.data, "new");
  });
  ASSERT_TRUE(ok);
}

TEST(QuorumOps, WritesEventuallyReachAllReplicas) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await w.store.replica(0).put("k", Cell(Value("v"), 1),
                                    Consistency::Quorum);
    co_await sim::sleep_for(w.sim, sim::sec(1));  // let the fan-out land
    co_return;
  });
  ASSERT_TRUE(ok);
  for (int i = 0; i < 3; ++i) {
    auto c = w.store.replica(i).local_read("k");
    ASSERT_TRUE(c.has_value()) << "replica " << i;
    EXPECT_EQ(c->value.data, "v");
  }
}

TEST(ConsistencyOne, LocalReadCanBeStale) {
  // CL::One reads the local replica: immediately after a remote quorum
  // write it may legitimately miss the value — eventual consistency.
  StoreWorld w;
  bool saw_stale = false;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // Write coordinated far away (site 2); read at site 0 immediately.
    co_await w.store.replica_at_site(2).put("k", Cell(Value("x"), 1),
                                            Consistency::One);
    auto g = co_await w.store.replica_at_site(0).get("k", Consistency::One);
    if (!g.ok()) saw_stale = true;
    co_return;
  });
  ASSERT_TRUE(ok);
  EXPECT_TRUE(saw_stale);
}

TEST(ReadRepair, QuorumReadHealsStaleReplica) {
  StoreWorld w;
  // Manually seed divergent replicas (replica 0 stale).
  w.store.replica(0).apply_write("k", Cell(Value("old"), 1));
  w.store.replica(1).apply_write("k", Cell(Value("new"), 2));
  w.store.replica(2).apply_write("k", Cell(Value("new"), 2));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto g = co_await w.store.replica(0).get("k", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().value.data, "new");
    co_await sim::sleep_for(w.sim, sim::sec(1));  // repair propagates
  });
  ASSERT_TRUE(ok);
  EXPECT_EQ(w.store.replica(0).local_read("k")->value.data, "new");
}

TEST(Placement, ThreeNodeClusterStoresEverywhere) {
  StoreWorld w;
  auto p = w.store.placement("anything");
  EXPECT_EQ(p.size(), 3u);
  std::set<sim::NodeId> uniq(p.begin(), p.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(Placement, NineNodeClusterKeepsOneReplicaPerSite) {
  StoreWorld w(1, sim::LatencyProfile::profile_lus(), 9);
  for (int i = 0; i < 50; ++i) {
    auto p = w.store.placement("key" + std::to_string(i));
    ASSERT_EQ(p.size(), 3u);
    std::set<int> sites;
    for (auto n : p) sites.insert(w.net.site_of(n));
    EXPECT_EQ(sites.size(), 3u) << "key" << i << " not spread across sites";
  }
}

TEST(Placement, KeysShardAcrossNineNodes) {
  StoreWorld w(1, sim::LatencyProfile::profile_lus(), 9);
  std::set<sim::NodeId> used;
  for (int i = 0; i < 200; ++i) {
    for (auto n : w.store.placement("key" + std::to_string(i))) used.insert(n);
  }
  EXPECT_EQ(used.size(), 9u);  // all nodes carry some keys
}

TEST(Scan, LocalPrefixScanFindsKeys) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await w.store.replica(0).put("job:" + std::to_string(i),
                                      Cell(Value("x"), i + 1),
                                      Consistency::Quorum);
    }
    co_await w.store.replica(0).put("other", Cell(Value("y"), 1),
                                    Consistency::Quorum);
    co_await sim::sleep_for(w.sim, sim::sec(1));
    auto keys = co_await w.store.replica(1).scan_local_keys("job:");
    CO_ASSERT_TRUE(keys.ok());
    EXPECT_EQ(keys.value().size(), 5u);
    EXPECT_EQ(keys.value().front(), "job:0");
  });
  ASSERT_TRUE(ok);
}

TEST(Failure, QuorumSurvivesOneReplicaDown) {
  StoreWorld w;
  w.store.replica(2).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await w.store.replica(0).put("k", Cell(Value("v"), 1),
                                              Consistency::Quorum);
    EXPECT_TRUE(st.ok());
    auto g = co_await w.store.replica(1).get("k", Consistency::Quorum);
    EXPECT_TRUE(g.ok());
  });
  ASSERT_TRUE(ok);
}

TEST(Failure, QuorumFailsWithTwoReplicasDown) {
  StoreWorld w;
  w.store.replica(1).set_down(true);
  w.store.replica(2).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await w.store.replica(0).put("k", Cell(Value("v"), 1),
                                              Consistency::Quorum);
    EXPECT_EQ(st.status(), OpStatus::Timeout);
    // CL::One still succeeds on the lone survivor.
    auto one = co_await w.store.replica(0).put("k", Cell(Value("v"), 1),
                                               Consistency::One);
    EXPECT_TRUE(one.ok());
  });
  ASSERT_TRUE(ok);
}

TEST(HintedHandoff, DownReplicaCatchesUpAfterRestart) {
  StoreWorld w;
  w.store.replica(2).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await w.store.replica(0).put("k", Cell(Value("v"), 7),
                                              Consistency::Quorum);
    EXPECT_TRUE(st.ok());
    co_await sim::sleep_for(w.sim, sim::sec(2));
    w.store.replica(2).set_down(false);
    co_await sim::sleep_for(w.sim, sim::sec(2));  // hints replay
  });
  ASSERT_TRUE(ok);
  auto c = w.store.replica(2).local_read("k");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->value.data, "v");
}

TEST(Partition, MinorityCoordinatorTimesOutThenHeals) {
  StoreWorld w;
  w.net.partition_sites({0}, {1, 2});
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await w.store.replica_at_site(0).put(
        "k", Cell(Value("v"), 1), Consistency::Quorum);
    EXPECT_EQ(st.status(), OpStatus::Timeout);  // only itself reachable
    // The majority side still works.
    auto st2 = co_await w.store.replica_at_site(1).put(
        "k", Cell(Value("w"), 2), Consistency::Quorum);
    EXPECT_TRUE(st2.ok());
    w.net.heal_partition();
    auto g = co_await w.store.replica_at_site(0).get("k", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().value.data, "w");
  });
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::ds
