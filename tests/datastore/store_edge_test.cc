// Edge cases of the data store and LWT machinery: tie-breaking, partial
// outages mid-operation, hint accumulation, consistency-level corner cases.
#include <gtest/gtest.h>

#include "datastore/store.h"
#include "util/world.h"

namespace music::ds {
namespace {

using test::StoreWorld;

TEST(StoreEdge, TimestampTieKeepsFirstWriter) {
  StoreWorld w;
  auto& r = w.store.replica(0);
  EXPECT_TRUE(r.apply_write("k", Cell(Value("first"), 100)));
  EXPECT_FALSE(r.apply_write("k", Cell(Value("second"), 100)));
  EXPECT_EQ(r.local_read("k")->value.data, "first");
}

TEST(StoreEdge, ConsistencyAllNeedsEveryReplica) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await w.store.replica(0).put("k", Cell(Value("v"), 1),
                                              Consistency::All);
    EXPECT_TRUE(st.ok());
    w.store.replica(2).set_down(true);
    auto st2 = co_await w.store.replica(0).put("k", Cell(Value("w"), 2),
                                               Consistency::All);
    EXPECT_EQ(st2.status(), OpStatus::Timeout);  // one replica missing
    auto q = co_await w.store.replica(0).put("k", Cell(Value("w"), 2),
                                             Consistency::Quorum);
    EXPECT_TRUE(q.ok());  // quorum still fine
  });
  ASSERT_TRUE(ok);
}

TEST(StoreEdge, ReadAtAllLevelsAgreesAfterSettling) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await w.store.replica(0).put("k", Cell(Value("v"), 5),
                                    Consistency::All);
    co_await sim::sleep_for(w.sim, sim::sec(1));
    for (auto level : {Consistency::One, Consistency::Quorum, Consistency::All}) {
      auto g = co_await w.store.replica(1).get("k", level);
      CO_ASSERT_TRUE(g.ok());
      EXPECT_EQ(g.value().value.data, "v");
    }
  });
  ASSERT_TRUE(ok);
}

TEST(StoreEdge, CoordinatorCrashMidWriteLosesNothingCommitted) {
  // A coordinator dies after its write reached a quorum: the value stays.
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await w.store.replica(0).put("k", Cell(Value("v"), 1),
                                              Consistency::Quorum);
    CO_ASSERT_TRUE(st.ok());
    w.store.replica(0).set_down(true);
    auto g = co_await w.store.replica(1).get("k", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().value.data, "v");
  });
  ASSERT_TRUE(ok);
}

TEST(StoreEdge, LwtOnDistinctKeysDoesNotContend) {
  // Paxos state is per key: concurrent LWTs on different keys finish in
  // first-attempt time (no ballot conflicts).
  StoreWorld w;
  int done = 0;
  sim::Time worst = 0;
  for (int i = 0; i < 4; ++i) {
    sim::spawn(w.sim, [](StoreWorld& world, int ki, int& d, sim::Time& wmax)
                          -> sim::Task<void> {
      ds::LwtUpdate set = [](const std::optional<Cell>&) {
        return LwtDecision(true, Value("x"), std::nullopt);
      };
      sim::Time t0 = world.sim.now();
      auto r = co_await world.store.replica_at_site(ki % 3)
                   .lwt("key" + std::to_string(ki), set);
      EXPECT_TRUE(r.ok());
      wmax = std::max(wmax, world.sim.now() - t0);
      ++d;
    }(w, i, done, worst));
  }
  w.sim.run_until(sim::sec(30));
  ASSERT_EQ(done, 4);
  EXPECT_LT(worst, sim::ms(300));  // ~4 RTTs, no retry rounds
}

TEST(StoreEdge, LwtSurvivesReplicaCrashMidProtocol) {
  StoreWorld w;
  // Crash a replica while the LWT's rounds are in flight.
  w.sim.schedule(sim::ms(30), [&] { w.store.replica(2).set_down(true); });
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ds::LwtUpdate set = [](const std::optional<Cell>&) {
      return LwtDecision(true, Value("survived"), std::nullopt);
    };
    auto r = co_await w.store.replica_at_site(0).lwt("k", set);
    CO_ASSERT_TRUE(r.ok());
    auto g = co_await w.store.replica_at_site(1).get("k", Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().value.data, "survived");
  }, sim::sec(120));
  ASSERT_TRUE(ok);
}

TEST(StoreEdge, HintsAccumulateAndDrainInOrderOfReachability) {
  StoreWorld w;
  w.store.replica(2).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      // Built stepwise: GCC 12 mis-fires -Werror=restrict on literal +
      // to_string rvalue concats inside coroutine frames.
      std::string k = "k";
      k += std::to_string(i);
      co_await w.store.replica(0).put(k, Cell(Value("v"), 1),
                                      Consistency::Quorum);
    }
    co_await sim::sleep_for(w.sim, sim::sec(1));
    w.store.replica(2).set_down(false);
    co_await sim::sleep_for(w.sim, sim::sec(3));
  });
  ASSERT_TRUE(ok);
  EXPECT_EQ(w.store.replica(2).table_size(), 10u);
}

TEST(StoreEdge, DroppyNetworkStillConvergesViaRetries) {
  // 5% message loss: quorum ops may time out individually; the caller's
  // retry loop rides it out and the store converges.
  sim::Simulation s(5);
  sim::NetworkConfig nc;
  nc.profile = sim::LatencyProfile::profile_lus();
  nc.drop_prob = 0.05;
  sim::Network net(s, nc);
  StoreCluster store(s, net, StoreConfig{}, {0, 1, 2});
  int committed = 0;
  sim::spawn(s, [](sim::Simulation& /*sm*/, StoreCluster& st, int& n) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      Status w = Status::Err(OpStatus::Timeout);
      while (!w.ok()) {
        w = co_await st.replica_at_site(i % 3).put(
            "k", ds::Cell(Value(std::to_string(i)), i + 1),
            Consistency::Quorum);
      }
      ++n;
    }
  }(s, store, committed));
  s.run_until(sim::sec(600));
  ASSERT_EQ(committed, 20);
  bool ok = false;
  sim::spawn(s, [](StoreCluster& st, bool& done) -> sim::Task<void> {
    Result<Cell> g = Result<Cell>::Err(OpStatus::Timeout);
    while (!g.ok()) {
      g = co_await st.replica_at_site(0).get("k", Consistency::Quorum);
    }
    EXPECT_EQ(g.value().value.data, "19");
    done = true;
  }(store, ok));
  s.run_until(sim::sec(700));
  EXPECT_TRUE(ok);
}

TEST(StoreEdge, ScanFindsNothingForUnknownPrefix) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto keys = co_await w.store.replica(0).scan_local_keys("ghost:");
    CO_ASSERT_TRUE(keys.ok());
    EXPECT_TRUE(keys.value().empty());
  });
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::ds
