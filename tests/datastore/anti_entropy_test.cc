// Anti-entropy repair tests: divergence that hints and read-repair cannot
// fix converges through the periodic digest exchange.
#include <gtest/gtest.h>

#include "datastore/store.h"
#include "util/world.h"

namespace music::ds {
namespace {

using test::StoreWorld;

StoreConfig no_hints() {
  StoreConfig cfg;
  cfg.hinted_handoff = false;  // force anti-entropy to do the healing
  cfg.read_repair = false;
  cfg.anti_entropy_interval = sim::sec(2);
  return cfg;
}

TEST(AntiEntropy, HealsAReplicaThatMissedWrites) {
  StoreWorld w(1, sim::LatencyProfile::profile_lus(), 3, no_hints());
  w.store.replica(2).set_down(true);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      // Built stepwise: GCC 12 mis-fires -Werror=restrict on literal +
      // to_string rvalue concats inside coroutine frames.
      std::string k = "k";
      k += std::to_string(i);
      auto st = co_await w.store.replica(0).put(
          k, Cell(Value("v"), i + 1), Consistency::Quorum);
      CO_ASSERT_TRUE(st.ok());
    }
  });
  ASSERT_TRUE(ok);
  w.store.replica(2).set_down(false);
  // Without hints or repair reads the replica stays empty...
  w.sim.run_for(sim::sec(1));
  EXPECT_EQ(w.store.replica(2).table_size(), 0u);
  // ...until anti-entropy runs.
  w.store.start_anti_entropy();
  w.sim.run_for(sim::sec(30));
  EXPECT_EQ(w.store.replica(2).table_size(), 5u);
  for (int i = 0; i < 5; ++i) {
    std::string k = "k";  // stepwise: see note above
    k += std::to_string(i);
    auto c = w.store.replica(2).local_read(k);
    ASSERT_TRUE(c.has_value()) << i;
    EXPECT_EQ(c->ts, i + 1);
  }
}

TEST(AntiEntropy, RepairsBothDirections) {
  StoreWorld w(2, sim::LatencyProfile::profile_lus(), 3, no_hints());
  // Seed divergent state directly: each replica knows something the others
  // do not, plus conflicting versions of a shared key.
  w.store.replica(0).apply_write("only-a", Cell(Value("a"), 1));
  w.store.replica(1).apply_write("only-b", Cell(Value("b"), 1));
  w.store.replica(0).apply_write("shared", Cell(Value("old"), 1));
  w.store.replica(1).apply_write("shared", Cell(Value("new"), 2));
  w.store.start_anti_entropy();
  w.sim.run_for(sim::sec(30));
  for (int i = 0; i < 3; ++i) {
    auto a = w.store.replica(i).local_read("only-a");
    auto b = w.store.replica(i).local_read("only-b");
    auto s = w.store.replica(i).local_read("shared");
    ASSERT_TRUE(a && b && s) << "replica " << i;
    EXPECT_EQ(s->value.data, "new") << "replica " << i;  // LWW winner spreads
  }
}

TEST(AntiEntropy, DoesNotResurrectOlderValues) {
  StoreWorld w(3, sim::LatencyProfile::profile_lus(), 3, no_hints());
  w.store.replica(0).apply_write("k", Cell(Value("stale"), 1));
  w.store.replica(1).apply_write("k", Cell(Value("fresh"), 5));
  w.store.replica(2).apply_write("k", Cell(Value("fresh"), 5));
  w.store.start_anti_entropy();
  w.sim.run_for(sim::sec(30));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(w.store.replica(i).local_read("k")->value.data, "fresh") << i;
    EXPECT_EQ(w.store.replica(i).local_read("k")->ts, 5) << i;
  }
}

TEST(AntiEntropy, SkipsPartitionedPeersThenCatchesUp) {
  StoreWorld w(4, sim::LatencyProfile::profile_lus(), 3, no_hints());
  w.store.replica(0).apply_write("k", Cell(Value("v"), 9));
  w.net.partition_sites({0}, {1, 2});
  w.store.start_anti_entropy();
  w.sim.run_for(sim::sec(10));
  EXPECT_FALSE(w.store.replica(1).local_read("k").has_value());
  w.net.heal_partition();
  w.sim.run_for(sim::sec(30));
  EXPECT_TRUE(w.store.replica(1).local_read("k").has_value());
  EXPECT_TRUE(w.store.replica(2).local_read("k").has_value());
}

}  // namespace
}  // namespace music::ds
