// Zookeeper lock-recipe tests: sequential znodes, mutual exclusion, FIFO
// fairness, and the §II contrast with MUSIC (abandoned znodes wedge the
// lock; no latest-state guarantee comes with it).
#include "zab/zk_lock.h"

#include <gtest/gtest.h>

#include "util/world.h"

namespace music::zab {
namespace {

struct ZkWorld {
  sim::Simulation sim;
  sim::Network net;
  ZabEnsemble ens;
  test::TaskRunner runner;

  explicit ZkWorld(uint64_t seed = 1)
      : sim(seed),
        net(sim,
            [] {
              sim::NetworkConfig c;
              c.profile = sim::LatencyProfile::profile_lus();
              return c;
            }()),
        ens(sim, net, ZabConfig{}, {0, 1, 2}),
        runner(sim) {
    ens.start();
  }
};

TEST(SequentialZnodes, AreUniqueAndOrdered) {
  ZkWorld w;
  std::vector<Key> created;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      auto r = co_await w.ens.server(i % 3).create_sequential("/q/n-", Value("x"));
      CO_ASSERT_TRUE(r.ok());
      created.push_back(r.value());
    }
    auto listed = co_await w.ens.server(0).sync_list("/q/n-");
    CO_ASSERT_TRUE(listed.ok());
    EXPECT_EQ(listed.value().size(), 5u);
  });
  ASSERT_TRUE(ok);
  // Creation order == lexicographic order (zero-padded sequence numbers).
  auto sorted = created;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(created, sorted);
  std::set<Key> uniq(created.begin(), created.end());
  EXPECT_EQ(uniq.size(), created.size());
}

TEST(ZkLock, MutualExclusionAndFifo) {
  ZkWorld w;
  std::vector<Key> grant_order;  // znode of each holder, in grant order
  int inside = 0;
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    sim::spawn(w.sim, [](ZkWorld& world, int id, std::vector<Key>& ord,
                         int& in, int& d) -> sim::Task<void> {
      ZkLock lock(world.ens.server(id % 3), "/locks/job");
      auto st = co_await lock.acquire();
      EXPECT_TRUE(st.ok());
      EXPECT_EQ(in, 0) << "two holders inside the recipe lock";
      ++in;
      ord.push_back(lock.my_node());
      co_await sim::sleep_for(world.sim, sim::sec(1));
      --in;
      co_await lock.release();
      ++d;
    }(w, i, grant_order, inside, done));
  }
  w.sim.run_until(sim::sec(300));
  ASSERT_EQ(done, 3);
  ASSERT_EQ(grant_order.size(), 3u);
  // FIFO by sequence-node order (clients at different sites race to the
  // leader, so client id order is NOT guaranteed — znode order is).
  EXPECT_TRUE(std::is_sorted(grant_order.begin(), grant_order.end()));
}

TEST(ZkLock, ReacquireAfterRelease) {
  ZkWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ZkLock lock(w.ens.server(0), "/locks/a");
    for (int i = 0; i < 3; ++i) {
      auto st = co_await lock.acquire();
      CO_ASSERT_TRUE(st.ok());
      EXPECT_TRUE(lock.held());
      co_await lock.release();
      EXPECT_FALSE(lock.held());
    }
  });
  ASSERT_TRUE(ok);
}

TEST(ZkLock, AbandonedHolderWedgesTheLock) {
  // The §II contrast: a crashed recipe holder blocks successors until its
  // (ephemeral, session-bound in real ZK) znode goes away — there is no
  // MUSIC-style forcedRelease + data synchronization built in.
  ZkWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ZkLock dead(w.ens.server(0), "/locks/w");
    co_await dead.acquire();
    Key orphan = dead.my_node();
    dead.abandon();  // crash: znode stays

    ZkLock next(w.ens.server(1), "/locks/w");
    auto st = co_await next.acquire(sim::ms(20), /*max_polls=*/20);
    EXPECT_EQ(st.status(), OpStatus::Timeout);  // wedged behind the orphan

    // "Session expiry": an external janitor deletes the orphan znode.
    co_await w.ens.server(2).remove(orphan);
    auto st2 = co_await next.acquire();
    EXPECT_TRUE(st2.ok());
    co_await next.release();
  }, sim::sec(300));
  ASSERT_TRUE(ok);
}

TEST(ZkLock, RecipePlusDataWritesCostsMoreRoundsThanMusic) {
  // A "critical section" built from the recipe (lock + N SC writes +
  // unlock) pays consensus for every data write; MUSIC pays quorum.  This
  // is Fig. 6's comparison restated at the recipe level.
  ZkWorld w;
  sim::Duration zk_section = 0;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    ZkClient data(w.ens, 0);
    ZkLock lock(w.ens.server(0), "/locks/cs");
    sim::Time t0 = w.sim.now();
    co_await lock.acquire();
    for (int i = 0; i < 5; ++i) {
      co_await data.set_data("/d", Value("v"));
    }
    co_await lock.release();
    zk_section = w.sim.now() - t0;
  });
  ASSERT_TRUE(ok);
  // Sanity band: acquire (create seq + sync-list) + 5 commits + delete,
  // each a Zab round trip through the remote leader.
  EXPECT_GT(zk_section, sim::ms(400));
}

}  // namespace
}  // namespace music::zab
