// Zab (Zookeeper substitute) tests: ordered commit, sequential consistency,
// local reads, fsync costs, leader failover.
#include "zab/zab.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "util/world.h"

namespace music::zab {
namespace {

struct ZabWorld {
  sim::Simulation sim;
  sim::Network net;
  ZabEnsemble ens;
  test::TaskRunner runner;

  explicit ZabWorld(uint64_t seed = 1, ZabConfig cfg = ZabConfig())
      : sim(seed),
        net(sim, [] {
          sim::NetworkConfig c;
          c.profile = sim::LatencyProfile::profile_lus();
          return c;
        }()),
        ens(sim, net, cfg, {0, 1, 2}),
        runner(sim) {
    ens.start();
  }
};

TEST(Zab, InitialLeaderIsStable) {
  ZabWorld w;
  w.sim.run_for(sim::sec(10));
  ZabServer* l = w.ens.leader();
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->id(), 2);  // highest id
  w.sim.run_for(sim::sec(30));
  EXPECT_EQ(w.ens.leader(), l);  // no churn without failures
}

TEST(Zab, WriteCommitsAndReadsBack) {
  ZabWorld w;
  ZkClient c(w.ens, 0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto st = co_await c.set_data("/a", Value("1"));
    CO_ASSERT_TRUE(st.ok());
    auto g = co_await c.get_data("/a");
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().data, "1");
  });
  ASSERT_TRUE(ok);
}

TEST(Zab, WritesAreTotallyOrderedAcrossServers) {
  ZabWorld w;
  ZkClient c0(w.ens, 0);
  ZkClient c2(w.ens, 2);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      auto& c = (i % 2 == 0) ? c0 : c2;
      auto st = co_await c.set_data("/seq", Value(std::to_string(i)));
      CO_ASSERT_TRUE(st.ok());
    }
    co_await sim::sleep_for(w.sim, sim::sec(2));  // commits propagate
  });
  ASSERT_TRUE(ok);
  // Every server applied the same number of txns and converged on the
  // final value.
  for (int i = 0; i < 3; ++i) {
    bool ok2 = w.runner.run([&]() -> sim::Task<void> {
      auto g = co_await w.ens.server(i).get_data("/seq");
      CO_ASSERT_TRUE(g.ok());
      EXPECT_EQ(g.value().data, "9") << "server " << i;
    });
    ASSERT_TRUE(ok2);
  }
}

TEST(Zab, ReadYourWritesAtTheConnectedServer) {
  ZabWorld w;
  ZkClient c(w.ens, 0);  // follower site
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await c.set_data("/x", Value("v" + std::to_string(i)));
      auto g = co_await c.get_data("/x");
      CO_ASSERT_TRUE(g.ok());
      EXPECT_EQ(g.value().data, "v" + std::to_string(i));
    }
  });
  ASSERT_TRUE(ok);
}

TEST(Zab, WriteLatencyIncludesForwardingAndQuorum) {
  // From site 0 (follower), a write forwards to the leader at site 2
  // (Ohio-Oregon 72.14ms RTT one-way 36ms), leader proposes to followers
  // and commits after the nearest follower acks — total ~1.5-2.5 RTTs plus
  // fsyncs.
  ZabWorld w;
  ZkClient c(w.ens, 0);
  sim::Time cost = 0;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await c.set_data("/warm", Value("w"));
    sim::Time t0 = w.sim.now();
    co_await c.set_data("/x", Value("v"));
    cost = w.sim.now() - t0;
  });
  ASSERT_TRUE(ok);
  EXPECT_GT(cost, sim::ms(60));
  EXPECT_LT(cost, sim::ms(220));
}

TEST(Zab, DeleteRemovesZnode) {
  ZabWorld w;
  ZkClient c(w.ens, 1);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await c.set_data("/d", Value("x"));
    auto st = co_await w.ens.server(1).remove("/d");
    EXPECT_TRUE(st.ok());
    co_await sim::sleep_for(w.sim, sim::sec(1));
    auto g = co_await c.get_data("/d");
    EXPECT_EQ(g.status(), OpStatus::NotFound);
  });
  ASSERT_TRUE(ok);
}

TEST(Zab, FailoverElectsNewLeaderAndResumesWrites) {
  ZabWorld w;
  ZkClient c(w.ens, 0);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await c.set_data("/a", Value("before"));
    w.ens.server(2).set_down(true);  // kill the leader
    auto st = co_await c.set_data("/b", Value("after"));
    CO_ASSERT_TRUE(st.ok());
    auto g = co_await c.get_data("/b");
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().data, "after");
  }, sim::sec(120));
  ASSERT_TRUE(ok);
  ASSERT_NE(w.ens.leader(), nullptr);
  EXPECT_EQ(w.ens.leader()->id(), 1);  // highest surviving id
}

TEST(Zab, SyncGetReadsFreshStateAcrossServers) {
  ZabWorld w;
  ZkClient c2(w.ens, 2);
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await c2.set_data("/y", Value("fresh"));
    // A plain local read at a lagging follower may be stale, but
    // sync+read is current.
    auto g = co_await w.ens.server(0).sync_get_data("/y");
    CO_ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().data, "fresh");
  });
  ASSERT_TRUE(ok);
}

TEST(Zab, AllServersApplyTheSameTotalOrder) {
  // The sequential-consistency core: every server applies the identical
  // zxid sequence, regardless of which server each write entered through.
  ZabWorld w(21);
  for (int i = 0; i < 3; ++i) w.ens.server(i).record_applied(true);
  int done = 0;
  for (int c = 0; c < 3; ++c) {
    sim::spawn(w.sim, [](ZabWorld& world, int site, int& d) -> sim::Task<void> {
      ZkClient client(world.ens, site);
      for (int i = 0; i < 8; ++i) {
        auto st = co_await client.set_data("/k" + std::to_string(i % 3),
                                           Value("s" + std::to_string(site)));
        EXPECT_TRUE(st.ok());
      }
      ++d;
    }(w, c, done));
  }
  w.sim.run_until(sim::sec(120));
  ASSERT_EQ(done, 3);
  w.sim.run_for(sim::sec(3));  // let trailing commits propagate
  const auto& ref_order = w.ens.server(0).applied_zxids();
  EXPECT_EQ(ref_order.size(), 24u);
  // zxids strictly increase (total order, no duplicates).
  for (size_t i = 1; i < ref_order.size(); ++i) {
    EXPECT_LT(ref_order[i - 1], ref_order[i]);
  }
  for (int s = 1; s < 3; ++s) {
    EXPECT_EQ(w.ens.server(s).applied_zxids(), ref_order) << "server " << s;
  }
}

TEST(Zab, EveryCommitHitsTheDisk) {
  ZabWorld w;
  ZkClient c(w.ens, 2);  // at the leader's site
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      co_await c.set_data("/k", Value("v"));
    }
    co_await sim::sleep_for(w.sim, sim::sec(1));
  });
  ASSERT_TRUE(ok);
  // Leader + each follower fsync once per proposal: applied counts match.
  EXPECT_GE(w.ens.server(2).applied(), 8u);
}

}  // namespace
}  // namespace music::zab
