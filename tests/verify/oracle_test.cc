// Tests for the verification oracle itself: it must accept legal ECF
// histories and flag illegal ones.
#include "verify/oracle.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace music::verify {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  sim::Simulation sim_{1};
  EcfChecker checker_{sim_};
};

TEST_F(OracleTest, AcceptsSimpleCriticalSection) {
  checker_.on_acquired("k", 1);
  checker_.on_put_attempt("k", 1, Value("a"));
  checker_.on_put_acked("k", 1, Value("a"));
  checker_.on_get_ok("k", 1, Value("a"));
  checker_.on_released("k", 1);
  checker_.on_acquired("k", 2);
  checker_.on_get_ok("k", 2, Value("a"));  // latest state carries over
  EXPECT_TRUE(checker_.ok()) << checker_.report();
}

TEST_F(OracleTest, FlagsStaleReadByNewHolder) {
  checker_.on_acquired("k", 1);
  checker_.on_put_attempt("k", 1, Value("old"));
  checker_.on_put_acked("k", 1, Value("old"));
  checker_.on_put_attempt("k", 1, Value("new"));
  checker_.on_put_acked("k", 1, Value("new"));
  checker_.on_released("k", 1);
  checker_.on_acquired("k", 2);
  checker_.on_get_ok("k", 2, Value("old"));  // VIOLATION: not the latest
  EXPECT_FALSE(checker_.ok());
  EXPECT_EQ(checker_.violations().front().invariant, "Latest-State");
}

TEST_F(OracleTest, FlagsReadOfNeverWrittenValue) {
  checker_.on_acquired("k", 1);
  checker_.on_get_ok("k", 1, Value("phantom"));
  EXPECT_FALSE(checker_.ok());
}

TEST_F(OracleTest, FlagsHolderForgettingItsOwnWrite) {
  checker_.on_acquired("k", 1);
  checker_.on_put_attempt("k", 1, Value("mine"));
  checker_.on_put_acked("k", 1, Value("mine"));
  checker_.on_get_ok("k", 1, Value("mine"));
  checker_.on_put_attempt("k", 1, Value("mine2"));
  checker_.on_put_acked("k", 1, Value("mine2"));
  checker_.on_get_ok("k", 1, Value("mine"));  // VIOLATION: own write lost
  EXPECT_FALSE(checker_.ok());
}

TEST_F(OracleTest, AcceptsNondeterministicChoiceAfterPreemption) {
  // Holder 1 acks "a" then attempts "b" (never acked) and is preempted.
  checker_.on_acquired("k", 1);
  checker_.on_put_attempt("k", 1, Value("a"));
  checker_.on_put_acked("k", 1, Value("a"));
  checker_.on_put_attempt("k", 1, Value("b"));  // in flight at preemption
  checker_.on_forced_release("k", 1);
  checker_.on_acquired("k", 2);
  // Either choice is legal (§III's refined true value).
  checker_.on_get_ok("k", 2, Value("b"));
  EXPECT_TRUE(checker_.ok()) << checker_.report();
  // And the choice is committed: a re-read of "a" now violates.
  checker_.on_get_ok("k", 2, Value("a"));
  EXPECT_FALSE(checker_.ok());
}

TEST_F(OracleTest, RejectsThirdValueAfterPreemption) {
  checker_.on_acquired("k", 1);
  checker_.on_put_attempt("k", 1, Value("a"));
  checker_.on_put_acked("k", 1, Value("a"));
  checker_.on_forced_release("k", 1);
  checker_.on_acquired("k", 2);
  checker_.on_get_ok("k", 2, Value("zzz"));  // VIOLATION: never attempted
  EXPECT_FALSE(checker_.ok());
}

TEST_F(OracleTest, FlagsOverlappingGrantsWithoutForcedRelease) {
  checker_.on_acquired("k", 1);
  checker_.on_acquired("k", 2);  // VIOLATION: 1 never released
  EXPECT_FALSE(checker_.ok());
  EXPECT_EQ(checker_.violations().front().invariant, "Exclusivity");
}

TEST_F(OracleTest, AllowsOverlapAfterForcedRelease) {
  checker_.on_acquired("k", 1);
  checker_.on_forced_release("k", 1);
  checker_.on_acquired("k", 2);  // fine: 1 was preempted
  EXPECT_TRUE(checker_.ok()) << checker_.report();
}

TEST_F(OracleTest, FlagsOutOfOrderGrants) {
  checker_.on_acquired("k", 5);
  checker_.on_released("k", 5);
  checker_.on_acquired("k", 3);  // VIOLATION: fairness
  EXPECT_FALSE(checker_.ok());
  EXPECT_EQ(checker_.violations().front().invariant, "Fairness");
}

TEST_F(OracleTest, PreemptedHoldersAckedWriteStaysEligibleUntilSync) {
  // Holder 1 preempted; ITS put still completes with an ack (quorum write
  // raced the preemption).  Holder 2 may legally read it.
  checker_.on_acquired("k", 1);
  checker_.on_put_attempt("k", 1, Value("a"));
  checker_.on_put_acked("k", 1, Value("a"));
  checker_.on_forced_release("k", 1);
  checker_.on_put_attempt("k", 1, Value("late"));
  checker_.on_put_acked("k", 1, Value("late"));  // acked post-preemption
  checker_.on_acquired("k", 2);
  checker_.on_get_ok("k", 2, Value("late"));
  EXPECT_TRUE(checker_.ok()) << checker_.report();
}

TEST_F(OracleTest, NotFoundOnlyLegalBeforeAnyCommittedWrite) {
  checker_.on_acquired("k", 1);
  checker_.on_get_not_found("k", 1);  // fine: nothing written yet
  EXPECT_TRUE(checker_.ok());
  checker_.on_put_attempt("k", 1, Value("a"));
  checker_.on_put_acked("k", 1, Value("a"));
  checker_.on_released("k", 1);
  checker_.on_acquired("k", 2);
  checker_.on_get_not_found("k", 2);  // VIOLATION: a true value exists
  EXPECT_FALSE(checker_.ok());
}

TEST_F(OracleTest, KeysAreIndependent) {
  checker_.on_acquired("a", 1);
  checker_.on_put_attempt("a", 1, Value("x"));
  checker_.on_put_acked("a", 1, Value("x"));
  checker_.on_acquired("b", 1);
  checker_.on_get_not_found("b", 1);  // b never written: fine
  EXPECT_TRUE(checker_.ok()) << checker_.report();
}

}  // namespace
}  // namespace music::verify
