// End-to-end integration: all layers in one simulated deployment — REST
// gateway, recipes, multi-key sections, the job-scheduler pattern, failure
// injection and the verification oracle, concurrently.
#include <gtest/gtest.h>

#include <memory>

#include "core/multikey.h"
#include "recipes/recipes.h"
#include "rest/rest.h"
#include "util/world.h"
#include "verify/oracle.h"

namespace music {
namespace {

using test::MusicWorld;
using test::WorldOptions;

TEST(EndToEnd, MixedWorkloadAcrossAllLayersSurvivesFailures) {
  WorldOptions opt;
  opt.seed = 2026;
  opt.clients_per_site = 3;  // 9 clients
  opt.music.holder_timeout = sim::sec(6);
  opt.music.fd_interval = sim::sec(1);
  MusicWorld w(opt);
  for (int i = 0; i < 3; ++i) w.replica(i).start_failure_detector();

  verify::EcfChecker checker(w.sim);
  checker.set_lenient_stale_grants(true);

  int completed_flows = 0;
  sim::Time end = sim::sec(90);

  // Flow 1: a REST-driven read-modify-write loop.
  sim::spawn(w.sim, [](MusicWorld& world, int& done, sim::Time until) -> sim::Task<void> {
    rest::RestGateway gw(world.client(0));
    int rounds = 0;
    while (world.sim.now() < until && rounds < 8) {
      auto created = rest::Json::parse(co_await gw.handle(
          R"({"op":"createLockRef","key":"rest-counter"})"));
      if (!created || (*created)["status"].as_string() != "Ok") continue;
      int64_t ref = (*created)["lockRef"].as_int();
      rest::Json acq;
      acq.set("op", "acquireLock").set("key", "rest-counter").set("lockRef", ref);
      std::string st;
      for (int i = 0; i < 256 && st != "Ok" && st != "NotLockHolder"; ++i) {
        st = (co_await gw.handle_json(acq))["status"].as_string();
        if (st != "Ok") co_await sim::sleep_for(world.sim, sim::ms(10));
      }
      if (st != "Ok") continue;
      rest::Json get;
      get.set("op", "criticalGet").set("key", "rest-counter").set("lockRef", ref);
      auto gr = co_await gw.handle_json(get);
      int v = gr["status"].as_string() == "Ok"
                  ? std::stoi(gr["value"].as_string())
                  : 0;
      rest::Json put;
      put.set("op", "criticalPut").set("key", "rest-counter").set("lockRef", ref)
          .set("value", std::to_string(v + 1));
      co_await gw.handle_json(put);
      rest::Json rel;
      rel.set("op", "releaseLock").set("key", "rest-counter").set("lockRef", ref);
      co_await gw.handle_json(rel);
      ++rounds;
    }
    ++done;
  }(w, completed_flows, end));

  // Flow 2: a distributed queue producer/consumer pair.
  sim::spawn(w.sim, [](MusicWorld& world, int& done, sim::Time until) -> sim::Task<void> {
    recipes::DistributedQueue producer(world.client(1), "workq");
    for (int i = 0; i < 6 && world.sim.now() < until; ++i) {
      co_await producer.push("task-" + std::to_string(i));
      co_await sim::sleep_for(world.sim, sim::sec(2));
    }
    ++done;
  }(w, completed_flows, end));
  auto consumed = std::make_shared<std::vector<std::string>>();
  sim::spawn(w.sim, [](MusicWorld& world, std::shared_ptr<std::vector<std::string>> out,
                       int& done, sim::Time until) -> sim::Task<void> {
    recipes::DistributedQueue consumer(world.client(2), "workq");
    while (world.sim.now() < until && out->size() < 6) {
      auto item = co_await consumer.pop();
      if (item.ok()) {
        out->push_back(item.value());
      } else {
        co_await sim::sleep_for(world.sim, sim::sec(1));
      }
    }
    ++done;
  }(w, consumed, completed_flows, end));

  // Flow 3: multi-key "transfers" between two accounts with an invariant.
  sim::spawn(w.sim, [](MusicWorld& world, int& done, sim::Time until) -> sim::Task<void> {
    auto& c = world.client(3);
    {
      core::MultiKeySection init(c, {"acct-x", "acct-y"});
      co_await init.acquire_all();
      co_await init.put("acct-x", Value("100"));
      co_await init.put("acct-y", Value("100"));
      co_await init.release_all();
    }
    for (int i = 0; i < 6 && world.sim.now() < until; ++i) {
      core::MultiKeySection cs(c, {"acct-x", "acct-y"});
      auto st = co_await cs.acquire_all();
      if (!st.ok()) continue;
      auto gx = co_await cs.get("acct-x");
      auto gy = co_await cs.get("acct-y");
      if (gx.ok() && gy.ok()) {
        int x = std::stoi(gx.value().data);
        int y = std::stoi(gy.value().data);
        EXPECT_EQ(x + y, 200);  // conservation across transfers
        co_await cs.put("acct-x", Value(std::to_string(x - 10)));
        co_await cs.put("acct-y", Value(std::to_string(y + 10)));
      }
      co_await cs.release_all();
    }
    ++done;
  }(w, completed_flows, end));

  // Flow 4: checked critical sections feeding the oracle.
  sim::spawn(w.sim, [](MusicWorld& world, verify::EcfChecker& ck, int& done,
                       sim::Time until) -> sim::Task<void> {
    verify::CheckedClient c(world.client(4), ck);
    int rounds = 0;
    while (world.sim.now() < until && rounds < 10) {
      auto ref = co_await c.create_lock_ref("oracle-key");
      if (!ref.ok()) continue;
      auto acq = co_await c.acquire_lock_blocking("oracle-key", ref.value());
      if (!acq.ok()) {
        co_await c.inner().remove_lock_ref("oracle-key", ref.value());
        continue;
      }
      auto g = co_await c.critical_get("oracle-key", ref.value());
      (void)g;
      // Built stepwise: GCC 12 mis-fires -Werror=restrict on literal +
      // to_string rvalue concats inside coroutine frames.
      std::string rv = "r";
      rv += std::to_string(rounds);
      co_await c.critical_put("oracle-key", ref.value(), Value(rv));
      co_await c.release_lock("oracle-key", ref.value());
      ++rounds;
    }
    ++done;
  }(w, checker, completed_flows, end));

  // Chaos: one store replica bounces twice during the run.
  w.sim.schedule(sim::sec(20), [&] { w.store.replica(2).set_down(true); });
  w.sim.schedule(sim::sec(25), [&] { w.store.replica(2).set_down(false); });
  w.sim.schedule(sim::sec(50), [&] { w.store.replica(0).set_down(true); });
  w.sim.schedule(sim::sec(56), [&] { w.store.replica(0).set_down(false); });

  w.sim.run_until(end + sim::sec(120));

  EXPECT_EQ(completed_flows, 5);  // REST, producer, consumer, transfers, oracle
  EXPECT_TRUE(checker.ok()) << checker.report();
  // Queue flow: FIFO order observed end to end.
  ASSERT_EQ(consumed->size(), 6u);
  for (size_t i = 0; i < consumed->size(); ++i) {
    EXPECT_EQ((*consumed)[i], "task-" + std::to_string(i));
  }
  // REST flow: the counter reflects every committed round.
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto v = co_await w.replica(1).get_quorum_unlocked("rest-counter");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().data, "8");
  });
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music
