// RaftLockStore tests: the §X-A1 consensus alternative behind the same
// LockBackend interface, including MUSIC running unchanged over it.
#include "lockstore/raft_lockstore.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/client.h"
#include "core/session.h"
#include "util/world.h"

namespace music::ls {
namespace {

/// A MUSIC world whose lock store is Raft-backed (the data store stays on
/// the quorum KV, exactly as the paper's architecture separates the two).
struct RaftLockWorld {
  sim::Simulation sim;
  sim::Network net;
  ds::StoreCluster store;
  raftkv::RaftCluster raft;
  RaftLockStore locks;
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  std::vector<std::unique_ptr<core::MusicClient>> clients;
  test::TaskRunner runner;

  explicit RaftLockWorld(uint64_t seed = 1)
      : sim(seed),
        net(sim,
            [] {
              sim::NetworkConfig c;
              c.profile = sim::LatencyProfile::profile_lus();
              return c;
            }()),
        store(sim, net, ds::StoreConfig{}, {0, 1, 2}),
        raft(sim, net, raftkv::RaftConfig{}, {0, 1, 2}),
        locks(raft),
        runner(sim) {
    raft.start();
    raft.wait_for_leader();
    for (int site = 0; site < 3; ++site) {
      replicas.push_back(std::make_unique<core::MusicReplica>(
          store, locks, core::MusicConfig{}, site));
    }
    for (int site = 0; site < 3; ++site) {
      std::vector<core::MusicReplica*> prefs{replicas[static_cast<size_t>(site)].get()};
      for (int i = 0; i < 3; ++i) {
        if (i != site) prefs.push_back(replicas[static_cast<size_t>(i)].get());
      }
      clients.push_back(std::make_unique<core::MusicClient>(
          sim, net, prefs, core::ClientConfig{}, site));
    }
  }
};

TEST(RaftLockStore, GeneratesUniqueIncreasingRefs) {
  RaftLockWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (LockRef expect = 1; expect <= 4; ++expect) {
      auto r = co_await w.locks.backend_generate(static_cast<int>(expect) % 3, "k");
      CO_ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value(), expect);
    }
  });
  ASSERT_TRUE(ok);
}

TEST(RaftLockStore, PeekIsLocalAndEventuallyConsistent) {
  RaftLockWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await w.locks.backend_generate(0, "k");
    co_await sim::sleep_for(w.sim, sim::sec(1));  // heartbeats carry commits
    sim::Time t0 = w.sim.now();
    auto p = co_await w.locks.backend_peek(1, "k");
    sim::Duration cost = w.sim.now() - t0;
    CO_ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().head, 1);
    EXPECT_LT(cost, sim::ms(5));  // local: no WAN round trip
  });
  ASSERT_TRUE(ok);
}

TEST(RaftLockStore, DequeueAdvancesTheQueue) {
  RaftLockWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await w.locks.backend_generate(0, "k");
    co_await w.locks.backend_generate(1, "k");
    co_await w.locks.backend_dequeue(0, "k", 1);
    co_await sim::sleep_for(w.sim, sim::sec(1));
    auto p = co_await w.locks.backend_peek(2, "k");
    CO_ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().head, 2);
  });
  ASSERT_TRUE(ok);
}

TEST(RaftLockStore, GenerateIsCheaperThanLwt) {
  // §X-A1: LWTs need 4 RTTs; a Raft commit needs ~1 (plus reaching the
  // leader).  The Raft-backed createLockRef should be well under half the
  // LWT-backed one.
  RaftLockWorld w;
  sim::Duration raft_cost = 0;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await w.locks.backend_generate(0, "warm");  // leader discovery
    sim::Time t0 = w.sim.now();
    co_await w.locks.backend_generate(0, "k");
    raft_cost = w.sim.now() - t0;
  });
  ASSERT_TRUE(ok);

  test::StoreWorld lwt_world;
  sim::Duration lwt_cost = 0;
  bool ok2 = lwt_world.runner.run([&]() -> sim::Task<void> {
    sim::Time t0 = lwt_world.sim.now();
    co_await lwt_world.locks.generate_and_enqueue(
        lwt_world.store.replica_at_site(0), "k");
    lwt_cost = lwt_world.sim.now() - t0;
  });
  ASSERT_TRUE(ok2);
  EXPECT_LT(raft_cost * 2, lwt_cost)
      << "raft=" << raft_cost << "us lwt=" << lwt_cost << "us";
}

TEST(RaftLockStore, MusicRunsUnchangedOverTheRaftBackend) {
  RaftLockWorld w;
  auto& c = *w.clients[0];
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int round = 0; round < 2; ++round) {
      auto body = [&](LockRef ref) -> sim::Task<Status> {
        auto g = co_await c.critical_get("cnt", ref);
        int v = g.ok() ? std::stoi(g.value().data) : 0;
        co_return co_await c.critical_put("cnt", ref, Value(std::to_string(v + 1)));
      };
      auto st = co_await c.with_lock("cnt", body);
      CO_ASSERT_TRUE(st.ok());
    }
    auto final_v = co_await w.replicas[1]->get_quorum_unlocked("cnt");
    CO_ASSERT_TRUE(final_v.ok());
    EXPECT_EQ(final_v.value().data, "2");
  }, sim::sec(300));
  ASSERT_TRUE(ok);
}

TEST(RaftLockStore, ContendingClientsSerializeFairly) {
  RaftLockWorld w;
  std::vector<LockRef> grants;
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    sim::spawn(w.sim, [](RaftLockWorld& world, int ci, std::vector<LockRef>& g,
                         int& d) -> sim::Task<void> {
      auto& c = *world.clients[static_cast<size_t>(ci)];
      auto ref = co_await c.create_lock_ref("k");
      if (ref.ok()) {
        auto acq = co_await c.acquire_lock_blocking("k", ref.value());
        if (acq.ok()) {
          g.push_back(ref.value());
          co_await c.critical_put("k", ref.value(), Value("v"));
          co_await c.release_lock("k", ref.value());
        }
      }
      ++d;
    }(w, i, grants, done));
  }
  w.sim.run_until(sim::sec(300));
  ASSERT_EQ(done, 3);
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_TRUE(std::is_sorted(grants.begin(), grants.end()));
}

TEST(RaftLockStore, SurvivesRaftLeaderFailover) {
  RaftLockWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto r1 = co_await w.locks.backend_generate(0, "k");
    CO_ASSERT_TRUE(r1.ok());
    w.raft.leader()->set_down(true);
    auto r2 = co_await w.locks.backend_generate(1, "k");
    CO_ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2.value(), r1.value() + 1);
  }, sim::sec(300));
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::ls
