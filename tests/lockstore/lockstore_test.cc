// Lock-store tests: the guard counter, FIFO lockRef queues, peek staleness
// and the serialization codec.
#include "lockstore/lockstore.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/world.h"

namespace music::ls {
namespace {

using test::StoreWorld;

TEST(LockQueueCodec, RoundTrips) {
  LockQueue q;
  q.guard = 42;
  q.entries = {LockEntry(40), LockEntry(41), LockEntry(42)};
  LockQueue parsed = LockQueue::parse(q.serialize());
  EXPECT_EQ(parsed.guard, 42);
  EXPECT_EQ(parsed.entries, q.entries);
  EXPECT_EQ(parsed.head(), 40);
}

TEST(LockQueueCodec, EmptyQueue) {
  LockQueue q;
  q.guard = 7;
  LockQueue parsed = LockQueue::parse(q.serialize());
  EXPECT_EQ(parsed.guard, 7);
  EXPECT_TRUE(parsed.entries.empty());
  EXPECT_FALSE(parsed.head().has_value());
}

TEST(LockQueueCodec, GarbageParsesToEmpty) {
  LockQueue parsed = LockQueue::parse("not-a-queue");
  EXPECT_EQ(parsed.guard, 0);
  EXPECT_TRUE(parsed.entries.empty());
}

TEST(LockStore, GeneratesUniqueIncreasingRefs) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (LockRef expect = 1; expect <= 5; ++expect) {
      auto r = co_await w.locks.generate_and_enqueue(
          w.store.replica_at_site(static_cast<int>(expect) % 3), "k");
      CO_ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value(), expect);  // the guard counter of Fig. 2
    }
  });
  ASSERT_TRUE(ok);
}

TEST(LockStore, RefsArePerKey) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto a1 = co_await w.locks.generate_and_enqueue(w.store.replica(0), "a");
    auto b1 = co_await w.locks.generate_and_enqueue(w.store.replica(0), "b");
    auto a2 = co_await w.locks.generate_and_enqueue(w.store.replica(0), "a");
    EXPECT_EQ(a1.value(), 1);
    EXPECT_EQ(b1.value(), 1);  // independent counter
    EXPECT_EQ(a2.value(), 2);
  });
  ASSERT_TRUE(ok);
}

TEST(LockStore, QueueIsFifo) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await w.locks.generate_and_enqueue(w.store.replica(0), "k");
    co_await w.locks.generate_and_enqueue(w.store.replica(1), "k");
    co_await w.locks.generate_and_enqueue(w.store.replica(2), "k");
    auto peek = co_await w.locks.peek_quorum(w.store.replica(0), "k");
    CO_ASSERT_TRUE(peek.ok());
    EXPECT_EQ(peek.value().head, 1);
    // Dequeue the head: next in line becomes first.
    co_await w.locks.dequeue(w.store.replica(0), "k", 1);
    peek = co_await w.locks.peek_quorum(w.store.replica(0), "k");
    EXPECT_EQ(peek.value().head, 2);
  });
  ASSERT_TRUE(ok);
}

TEST(LockStore, DequeueOfAbsentRefIsNoOp) {
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    co_await w.locks.generate_and_enqueue(w.store.replica(0), "k");
    auto st = co_await w.locks.dequeue(w.store.replica(0), "k", 999);
    EXPECT_TRUE(st.ok());  // lsDequeue is a no-op if the ref is not queued
    auto peek = co_await w.locks.peek_quorum(w.store.replica(0), "k");
    EXPECT_EQ(peek.value().head, 1);
  });
  ASSERT_TRUE(ok);
}

TEST(LockStore, DequeueFromMiddlePreservesOthers) {
  // A worker that lost the race evicts its reference (removeLockReference,
  // §VII) without disturbing the queue order.
  StoreWorld w;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await w.locks.generate_and_enqueue(w.store.replica(0), "k");
    }
    co_await w.locks.dequeue(w.store.replica(0), "k", 2);  // middle
    auto g = co_await w.store.replica(0).get(LockStore::queue_key("k"),
                                             ds::Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    LockQueue q = LockQueue::parse(g.value().value.data);
    CO_ASSERT_EQ(q.entries.size(), 2u);
    EXPECT_EQ(q.entries[0].ref, 1);
    EXPECT_EQ(q.entries[1].ref, 3);
    EXPECT_EQ(q.guard, 3);  // guard unchanged by dequeue
  });
  ASSERT_TRUE(ok);
}

TEST(LockStore, LocalPeekIsCheapAndCanBeStale) {
  StoreWorld w;
  sim::Time peek_cost = 0;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // Enqueue through site 2's coordinator; peek immediately at site 0.
    co_await w.locks.generate_and_enqueue(w.store.replica_at_site(2), "k");
    auto p0 = co_await w.locks.peek(w.store.replica_at_site(0), "k");
    CO_ASSERT_TRUE(p0.ok());
    // Either it has not propagated yet (stale view: unknown) or it has; both
    // are legal for an eventual read.  After settling it must be visible.
    co_await sim::sleep_for(w.sim, sim::sec(1));
    sim::Time t0 = w.sim.now();
    auto p1 = co_await w.locks.peek(w.store.replica_at_site(0), "k");
    peek_cost = w.sim.now() - t0;
    CO_ASSERT_TRUE(p1.ok());
    EXPECT_EQ(p1.value().head, 1);
  });
  ASSERT_TRUE(ok);
  // The peek is local: well under a WAN round trip (Fig. 5(b): ~0.67ms).
  EXPECT_LT(peek_cost, sim::ms(5));
}

TEST(LockStore, GenerateCostsOneConsensusWrite) {
  StoreWorld w;
  sim::Time cost = 0;
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    sim::Time t0 = w.sim.now();
    co_await w.locks.generate_and_enqueue(w.store.replica_at_site(0), "k");
    cost = w.sim.now() - t0;
  });
  ASSERT_TRUE(ok);
  // 4 round trips to the nearest quorum peer (~54ms RTT) ~ 215ms, matching
  // the paper's 219-230ms for createLockRef (Fig. 5(b)).
  EXPECT_GT(cost, sim::ms(180));
  EXPECT_LT(cost, sim::ms(280));
}

class LockStoreContention : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockStoreContention, ConcurrentEnqueuesGetDistinctRefs) {
  StoreWorld w(GetParam());
  std::vector<LockRef> got;
  int finished = 0;
  for (int c = 0; c < 6; ++c) {
    sim::spawn(w.sim, [](StoreWorld& world, int site, std::vector<LockRef>& out,
                         int& fin) -> sim::Task<void> {
      Result<LockRef> r = Result<LockRef>::Err(OpStatus::Timeout);
      while (!r.ok()) {
        r = co_await world.locks.generate_and_enqueue(
            world.store.replica_at_site(site % 3), "k");
      }
      out.push_back(r.value());
      ++fin;
    }(w, c, got, finished));
  }
  w.sim.run_until(sim::sec(900));
  ASSERT_EQ(finished, 6);
  // Exclusivity rests on this: no two clients may ever receive the same
  // lockRef.  Gaps ARE possible (a retried enqueue whose first proposal was
  // replayed by a competitor leaves an orphan ref; SIV-B: orphans are
  // removed by forcedRelease when they reach the head).
  std::sort(got.begin(), got.end());
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end())
      << "duplicate lockRef handed to two clients";
  // Every returned ref is in the final queue, in ascending order, and the
  // guard dominates them all.
  bool ok2 = w.runner.run([&]() -> sim::Task<void> {
    auto g = co_await w.store.replica(0).get(LockStore::queue_key("k"),
                                             ds::Consistency::Quorum);
    CO_ASSERT_TRUE(g.ok());
    LockQueue q = LockQueue::parse(g.value().value.data);
    for (LockRef r : got) {
      bool found = false;
      for (const auto& e : q.entries) found = found || e.ref == r;
      EXPECT_TRUE(found) << "acked ref " << r << " missing from the queue";
    }
    for (size_t i = 1; i < q.entries.size(); ++i) {
      EXPECT_LT(q.entries[i - 1].ref, q.entries[i].ref);
    }
    if (!q.entries.empty()) {
      EXPECT_GE(q.guard, q.entries.back().ref);
    }
  });
  ASSERT_TRUE(ok2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockStoreContention,
                         ::testing::Values(3, 17, 256));

}  // namespace
}  // namespace music::ls
