// JSON layer tests: parsing, serialization, round trips, error handling.
#include "rest/json.h"

#include <gtest/gtest.h>

namespace music::rest {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool(true));
  EXPECT_DOUBLE_EQ(Json::parse("3.25")->as_number(), 3.25);
  EXPECT_EQ(Json::parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  auto j = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE((*j)["a"].is_array());
  EXPECT_EQ((*j)["a"].as_array().size(), 3u);
  EXPECT_EQ((*j)["a"].as_array()[2]["b"].as_string(), "c");
  EXPECT_TRUE((*j)["d"]["e"].is_null());
  EXPECT_TRUE((*j)["missing"].is_null());
}

TEST(Json, ParsesEscapes) {
  auto j = Json::parse(R"("line\nbreak \"quoted\" tab\t back\\slash uA")");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "line\nbreak \"quoted\" tab\t back\\slash uA");
}

TEST(Json, ParsesUnicodeEscapesAsUtf8) {
  auto j = Json::parse(R"("é中")");  // é, 中
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "{'a':1}",
        "[1] trailing", "{\"a\" 1}", "nul", "01a"}) {
    EXPECT_FALSE(Json::parse(bad).has_value()) << bad;
  }
}

TEST(Json, DumpRoundTrips) {
  const char* cases[] = {
      R"({"a":[1,2,3],"b":"x","c":{"d":true,"e":null}})",
      R"([])",
      R"({})",
      R"(["nested",["deep",["deeper"]]])",
  };
  for (const char* text : cases) {
    auto j = Json::parse(text);
    ASSERT_TRUE(j.has_value()) << text;
    auto again = Json::parse(j->dump());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*j, *again) << text;
  }
}

TEST(Json, DumpEscapesControlCharacters) {
  Json j(std::string("a\nb\"c\\d\x01"));
  auto back = Json::parse(j.dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_string(), "a\nb\"c\\d\x01");
}

TEST(Json, BuilderApi) {
  Json j;
  j.set("op", "criticalPut").set("lockRef", 7);
  j.set("tags", Json(Json::Array{Json("x"), Json("y")}));
  Json arr;
  arr.push(1).push(2);
  j.set("nums", std::move(arr));
  EXPECT_EQ(j["op"].as_string(), "criticalPut");
  EXPECT_EQ(j["lockRef"].as_int(), 7);
  EXPECT_EQ(j["nums"].as_array().size(), 2u);
  auto round = Json::parse(j.dump());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, j);
}

TEST(Json, IntegersDumpWithoutDecimalPoint) {
  Json j(int64_t{1234567});
  EXPECT_EQ(j.dump(), "1234567");
}

}  // namespace
}  // namespace music::rest
