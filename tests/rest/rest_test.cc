// REST gateway tests: the §VI JSON interface end-to-end over a simulated
// deployment, including the full Listing-1 flow driven purely by JSON.
#include "rest/rest.h"

#include <gtest/gtest.h>

#include "util/world.h"

namespace music::rest {
namespace {

using test::MusicWorld;

TEST(Rest, Listing1DrivenEntirelyByJson) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto created = Json::parse(co_await gw.handle(
        R"({"op":"createLockRef","key":"k"})"));
    CO_ASSERT_TRUE(created.has_value());
    CO_ASSERT_EQ((*created)["status"].as_string(), "Ok");
    int64_t ref = (*created)["lockRef"].as_int();
    EXPECT_EQ(ref, 1);

    // Poll acquireLock until granted (Listing 1's loop, via JSON).
    std::string status;
    for (int i = 0; i < 64 && status != "Ok"; ++i) {
      Json req;
      req.set("op", "acquireLock").set("key", "k").set("lockRef", ref);
      auto reply = co_await gw.handle_json(req);
      status = reply["status"].as_string();
      if (status != "Ok") co_await sim::sleep_for(w.sim, sim::ms(5));
    }
    CO_ASSERT_EQ(status, "Ok");

    Json put;
    put.set("op", "criticalPut").set("key", "k").set("lockRef", ref)
        .set("value", "42");
    auto pr = co_await gw.handle_json(put);
    EXPECT_EQ(pr["status"].as_string(), "Ok");

    Json get;
    get.set("op", "criticalGet").set("key", "k").set("lockRef", ref);
    auto gr = co_await gw.handle_json(get);
    CO_ASSERT_EQ(gr["status"].as_string(), "Ok");
    EXPECT_EQ(gr["value"].as_string(), "42");

    Json rel;
    rel.set("op", "releaseLock").set("key", "k").set("lockRef", ref);
    auto rr = co_await gw.handle_json(rel);
    EXPECT_EQ(rr["status"].as_string(), "Ok");
  });
  ASSERT_TRUE(ok);
}

TEST(Rest, EventualOpsAndKeyListing) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto r = Json::parse(co_await gw.handle(
          R"({"op":"put","key":"job-)" + std::to_string(i) +
          R"(","value":"pending"})"));
      CO_ASSERT_TRUE(r.has_value());
      EXPECT_EQ((*r)["status"].as_string(), "Ok");
    }
    co_await sim::sleep_for(w.sim, sim::sec(1));
    auto g = Json::parse(co_await gw.handle(R"({"op":"get","key":"job-1"})"));
    CO_ASSERT_TRUE(g.has_value());
    EXPECT_EQ((*g)["value"].as_string(), "pending");
    auto keys = Json::parse(co_await gw.handle(
        R"({"op":"getAllKeys","key":"job-"})"));
    CO_ASSERT_TRUE(keys.has_value());
    EXPECT_EQ((*keys)["keys"].as_array().size(), 3u);
  });
  ASSERT_TRUE(ok);
}

TEST(Rest, RejectsMalformedRequestsWithoutTouchingTheStore) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (const char* bad : {
             "not json at all",
             R"([1,2,3])",                              // not an object
             R"({"key":"k"})",                          // no op
             R"({"op":"criticalPut","key":"k"})",       // no lockRef
             R"({"op":"criticalPut","key":"k","lockRef":1})",  // no value
             R"({"op":"teleport","key":"k"})",          // unknown op
             R"({"op":"get"})",                         // no key
         }) {
      auto r = Json::parse(co_await gw.handle(bad));
      CO_ASSERT_TRUE(r.has_value());
      EXPECT_EQ((*r)["status"].as_string(), "BadRequest") << bad;
    }
    co_return;
  });
  ASSERT_TRUE(ok);
  // No operations reached the replicas.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(w.replica(i).stats().create_lock_ref, 0u);
    EXPECT_EQ(w.replica(i).stats().critical_puts, 0u);
  }
}

TEST(Rest, GuardFailuresSurfaceAsStatusStrings) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // criticalPut with a lockRef that was never granted.
    auto r = Json::parse(co_await gw.handle(
        R"({"op":"criticalPut","key":"k","lockRef":42,"value":"x"})"));
    CO_ASSERT_TRUE(r.has_value());
    EXPECT_EQ((*r)["status"].as_string(), "NotYetHolder");
    // criticalGet on a missing key inside a real section.
    auto created = Json::parse(co_await gw.handle(
        R"({"op":"createLockRef","key":"k"})"));
    int64_t ref = (*created)["lockRef"].as_int();
    Json acq;
    acq.set("op", "acquireLock").set("key", "k").set("lockRef", ref);
    std::string status;
    for (int i = 0; i < 64 && status != "Ok"; ++i) {
      status = (co_await gw.handle_json(acq))["status"].as_string();
      if (status != "Ok") co_await sim::sleep_for(w.sim, sim::ms(5));
    }
    Json get;
    get.set("op", "criticalGet").set("key", "k").set("lockRef", ref);
    auto gr = co_await gw.handle_json(get);
    EXPECT_EQ(gr["status"].as_string(), "NotFound");
  });
  ASSERT_TRUE(ok);
}

}  // namespace
}  // namespace music::rest
