// REST gateway tests: the §VI JSON interface end-to-end over a simulated
// deployment, including the full Listing-1 flow driven purely by JSON.
#include "rest/rest.h"

#include <gtest/gtest.h>

#include "cluster/world.h"
#include "util/world.h"

namespace music::rest {
namespace {

using test::ClusterWorld;
using test::ClusterWorldOptions;
using test::MusicWorld;

TEST(Rest, Listing1DrivenEntirelyByJson) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto created = Json::parse(co_await gw.handle(
        R"({"op":"createLockRef","key":"k"})"));
    CO_ASSERT_TRUE(created.has_value());
    CO_ASSERT_EQ((*created)["status"].as_string(), "Ok");
    int64_t ref = (*created)["lockRef"].as_int();
    EXPECT_EQ(ref, 1);

    // Poll acquireLock until granted (Listing 1's loop, via JSON).
    std::string status;
    for (int i = 0; i < 64 && status != "Ok"; ++i) {
      Json req;
      req.set("op", "acquireLock").set("key", "k").set("lockRef", ref);
      auto reply = co_await gw.handle_json(req);
      status = reply["status"].as_string();
      if (status != "Ok") co_await sim::sleep_for(w.sim, sim::ms(5));
    }
    CO_ASSERT_EQ(status, "Ok");

    Json put;
    put.set("op", "criticalPut").set("key", "k").set("lockRef", ref)
        .set("value", "42");
    auto pr = co_await gw.handle_json(put);
    EXPECT_EQ(pr["status"].as_string(), "Ok");

    Json get;
    get.set("op", "criticalGet").set("key", "k").set("lockRef", ref);
    auto gr = co_await gw.handle_json(get);
    CO_ASSERT_EQ(gr["status"].as_string(), "Ok");
    EXPECT_EQ(gr["value"].as_string(), "42");

    Json rel;
    rel.set("op", "releaseLock").set("key", "k").set("lockRef", ref);
    auto rr = co_await gw.handle_json(rel);
    EXPECT_EQ(rr["status"].as_string(), "Ok");
  });
  ASSERT_TRUE(ok);
}

TEST(Rest, EventualOpsAndKeyListing) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto r = Json::parse(co_await gw.handle(
          R"({"op":"put","key":"job-)" + std::to_string(i) +
          R"(","value":"pending"})"));
      CO_ASSERT_TRUE(r.has_value());
      EXPECT_EQ((*r)["status"].as_string(), "Ok");
    }
    co_await sim::sleep_for(w.sim, sim::sec(1));
    auto g = Json::parse(co_await gw.handle(R"({"op":"get","key":"job-1"})"));
    CO_ASSERT_TRUE(g.has_value());
    EXPECT_EQ((*g)["value"].as_string(), "pending");
    auto keys = Json::parse(co_await gw.handle(
        R"({"op":"getAllKeys","key":"job-"})"));
    CO_ASSERT_TRUE(keys.has_value());
    EXPECT_EQ((*keys)["keys"].as_array().size(), 3u);
  });
  ASSERT_TRUE(ok);
}

TEST(Rest, RejectsMalformedRequestsWithoutTouchingTheStore) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (const char* bad : {
             "not json at all",
             R"([1,2,3])",                              // not an object
             R"({"key":"k"})",                          // no op
             R"({"op":"criticalPut","key":"k"})",       // no lockRef
             R"({"op":"criticalPut","key":"k","lockRef":1})",  // no value
             R"({"op":"teleport","key":"k"})",          // unknown op
             R"({"op":"get"})",                         // no key
         }) {
      auto r = Json::parse(co_await gw.handle(bad));
      CO_ASSERT_TRUE(r.has_value());
      EXPECT_EQ((*r)["status"].as_string(), "BadRequest") << bad;
    }
    co_return;
  });
  ASSERT_TRUE(ok);
  // No operations reached the replicas.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(w.replica(i).stats().create_lock_ref, 0u);
    EXPECT_EQ(w.replica(i).stats().critical_puts, 0u);
  }
}

TEST(Rest, GuardFailuresSurfaceAsStatusStrings) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    // criticalPut with a lockRef that was never granted.
    auto r = Json::parse(co_await gw.handle(
        R"({"op":"criticalPut","key":"k","lockRef":42,"value":"x"})"));
    CO_ASSERT_TRUE(r.has_value());
    EXPECT_EQ((*r)["status"].as_string(), "NotYetHolder");
    // criticalGet on a missing key inside a real section.
    auto created = Json::parse(co_await gw.handle(
        R"({"op":"createLockRef","key":"k"})"));
    int64_t ref = (*created)["lockRef"].as_int();
    Json acq;
    acq.set("op", "acquireLock").set("key", "k").set("lockRef", ref);
    std::string status;
    for (int i = 0; i < 64 && status != "Ok"; ++i) {
      status = (co_await gw.handle_json(acq))["status"].as_string();
      if (status != "Ok") co_await sim::sleep_for(w.sim, sim::ms(5));
    }
    Json get;
    get.set("op", "criticalGet").set("key", "k").set("lockRef", ref);
    auto gr = co_await gw.handle_json(get);
    EXPECT_EQ(gr["status"].as_string(), "NotFound");
  });
  ASSERT_TRUE(ok);
}

// The "batch" verb end-to-end: an ordered mix of puts and gets under one
// lockRef, one wire request, per-op statuses in order.
TEST(Rest, BatchExecutesOrderedOpsUnderOneLockRef) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto created = Json::parse(co_await gw.handle(
        R"({"op":"createLockRef","key":"k"})"));
    CO_ASSERT_TRUE(created.has_value());
    int64_t ref = (*created)["lockRef"].as_int();
    Json acq;
    acq.set("op", "acquireLock").set("key", "k").set("lockRef", ref);
    std::string status;
    for (int i = 0; i < 64 && status != "Ok"; ++i) {
      status = (co_await gw.handle_json(acq))["status"].as_string();
      if (status != "Ok") co_await sim::sleep_for(w.sim, sim::ms(5));
    }
    CO_ASSERT_EQ(status, "Ok");

    Json req;
    req.set("op", "batch").set("key", "k").set("lockRef", ref);
    Json ops;
    ops.push(Json().set("op", "put").set("key", "k/a").set("value", "1"));
    ops.push(Json().set("op", "put").set("key", "k/b").set("value", "2"));
    ops.push(Json().set("op", "get").set("key", "k/a"));
    ops.push(Json().set("op", "get"));  // key defaults to the lock key
    req.set("ops", ops);
    auto reply = co_await gw.handle_json(req);
    // NotFound on a get is benign, so the roll-up is still Ok.
    CO_ASSERT_EQ(reply["status"].as_string(), "Ok");
    const auto& rs = reply["results"].as_array();
    CO_ASSERT_EQ(rs.size(), 4u);
    EXPECT_EQ(rs[0]["status"].as_string(), "Ok");
    EXPECT_EQ(rs[1]["status"].as_string(), "Ok");
    CO_ASSERT_EQ(rs[2]["status"].as_string(), "Ok");
    EXPECT_EQ(rs[2]["value"].as_string(), "1");
    EXPECT_EQ(rs[3]["status"].as_string(), "NotFound");

    Json rel;
    rel.set("op", "releaseLock").set("key", "k").set("lockRef", ref);
    EXPECT_EQ((co_await gw.handle_json(rel))["status"].as_string(), "Ok");
  });
  ASSERT_TRUE(ok);
}

TEST(Rest, BatchRejectsMalformedBodiesWithoutTouchingTheStore) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    for (const char* bad : {
             // no lockRef
             R"({"op":"batch","key":"k","ops":[{"op":"get"}]})",
             // no ops array
             R"({"op":"batch","key":"k","lockRef":1})",
             // ops not an array
             R"({"op":"batch","key":"k","lockRef":1,"ops":"get"})",
             // entry not an object
             R"({"op":"batch","key":"k","lockRef":1,"ops":["get"]})",
             // put without value
             R"({"op":"batch","key":"k","lockRef":1,"ops":[{"op":"put"}]})",
             // unknown sub-op — even after valid entries
             R"({"op":"batch","key":"k","lockRef":1,)"
             R"("ops":[{"op":"put","value":"x"},{"op":"teleport"}]})",
         }) {
      auto r = Json::parse(co_await gw.handle(bad));
      CO_ASSERT_TRUE(r.has_value());
      EXPECT_EQ((*r)["status"].as_string(), "BadRequest") << bad;
    }
    co_return;
  });
  ASSERT_TRUE(ok);
  // Validation is all-or-nothing: nothing reached the replicas.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(w.replica(i).stats().batches, 0u);
    EXPECT_EQ(w.replica(i).stats().critical_puts, 0u);
  }
}

// A well-formed batch under a never-granted lockRef comes back with one
// NotYetHolder per sub-op (the aligned-results guarantee), not a bare
// top-level error.
TEST(Rest, BatchUnderUngrantedRefReportsPerOpStatuses) {
  MusicWorld w;
  RestGateway gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto r = Json::parse(co_await gw.handle(
        R"({"op":"batch","key":"k","lockRef":42,)"
        R"("ops":[{"op":"put","value":"x"},{"op":"get"},{"op":"delete"}]})"));
    CO_ASSERT_TRUE(r.has_value());
    EXPECT_EQ((*r)["status"].as_string(), "NotYetHolder");
    const auto& rs = (*r)["results"].as_array();
    CO_ASSERT_EQ(rs.size(), 3u);
    for (const auto& e : rs) {
      EXPECT_EQ(e["status"].as_string(), "NotYetHolder");
    }
  });
  ASSERT_TRUE(ok);
}

// ---- The sharded binding: every verb routes through cluster::Client. -------

TEST(RestCluster, StatusReportsDeploymentShapeForBothBindings) {
  MusicWorld w;
  RestGateway core_gw(w.client(0));
  bool ok = w.runner.run([&]() -> sim::Task<void> {
    auto r = co_await core_gw.handle_json(Json().set("op", "status"));
    CO_ASSERT_EQ(r["status"].as_string(), "Ok");
    EXPECT_EQ(r["shard_count"].as_int(), 1);
    EXPECT_EQ(r["map_epoch"].as_int(), 0);
  });
  ASSERT_TRUE(ok);

  ClusterWorldOptions opt;
  opt.cluster.shards = 4;
  ClusterWorld cw(opt);
  RestGateway gw(cw.make_client(0));
  ok = cw.runner.run([&]() -> sim::Task<void> {
    auto r = co_await gw.handle_json(Json().set("op", "status"));
    CO_ASSERT_EQ(r["status"].as_string(), "Ok");
    EXPECT_EQ(r["shard_count"].as_int(), 4);
    EXPECT_EQ(r["map_epoch"].as_int(), 0);

    // After a shard move the epoch shows through the same endpoint.
    int shard = cw.cluster.snapshot()->route("k");
    int src = cw.cluster.snapshot()->group_of(shard);
    CO_ASSERT_TRUE((co_await cw.cluster.move_shard(
                        shard, (src + 1) % cw.cluster.num_groups()))
                       .ok());
    auto r2 = co_await gw.handle_json(Json().set("op", "status"));
    EXPECT_EQ(r2["map_epoch"].as_int(), 1);
  });
  ASSERT_TRUE(ok);
}

TEST(RestCluster, Listing1FlowOverAShardedDeployment) {
  ClusterWorldOptions opt;
  opt.cluster.shards = 4;
  ClusterWorld cw(opt);
  RestGateway gw(cw.make_client(0));
  bool ok = cw.runner.run([&]() -> sim::Task<void> {
    auto created = Json::parse(co_await gw.handle(
        R"({"op":"createLockRef","key":"k"})"));
    CO_ASSERT_TRUE(created.has_value());
    CO_ASSERT_EQ((*created)["status"].as_string(), "Ok");
    int64_t ref = (*created)["lockRef"].as_int();

    Json acq;
    acq.set("op", "acquireLock").set("key", "k").set("lockRef", ref);
    std::string status;
    for (int i = 0; i < 64 && status != "Ok"; ++i) {
      status = (co_await gw.handle_json(acq))["status"].as_string();
      if (status != "Ok") co_await sim::sleep_for(cw.sim, sim::ms(5));
    }
    CO_ASSERT_EQ(status, "Ok");

    Json put;
    put.set("op", "criticalPut").set("key", "k").set("lockRef", ref)
        .set("value", "42");
    EXPECT_EQ((co_await gw.handle_json(put))["status"].as_string(), "Ok");
    Json get;
    get.set("op", "criticalGet").set("key", "k").set("lockRef", ref);
    auto gr = co_await gw.handle_json(get);
    CO_ASSERT_EQ(gr["status"].as_string(), "Ok");
    EXPECT_EQ(gr["value"].as_string(), "42");
    Json rel;
    rel.set("op", "releaseLock").set("key", "k").set("lockRef", ref);
    EXPECT_EQ((co_await gw.handle_json(rel))["status"].as_string(), "Ok");

    // Eventual ops and key listing fan out across groups behind the same
    // JSON surface.
    for (int i = 0; i < 3; ++i) {
      auto pr = Json::parse(co_await gw.handle(
          R"({"op":"put","key":"job-)" + std::to_string(i) +
          R"(","value":"pending"})"));
      CO_ASSERT_TRUE(pr.has_value());
      EXPECT_EQ((*pr)["status"].as_string(), "Ok");
    }
    co_await sim::sleep_for(cw.sim, sim::sec(1));
    auto keys = Json::parse(co_await gw.handle(
        R"({"op":"getAllKeys","key":"job-"})"));
    CO_ASSERT_TRUE(keys.has_value());
    EXPECT_EQ((*keys)["keys"].as_array().size(), 3u);
  });
  ASSERT_TRUE(ok);
  EXPECT_TRUE(cw.checker.ok()) << cw.checker.report();
}

}  // namespace
}  // namespace music::rest
