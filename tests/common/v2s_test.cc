// Tests for the vector-to-scalar timestamp mapping: the §X-A2 ordering
// lemma, the §X-A3 overflow bound, and the forcedRelease delta stamps of
// §IV-B.
#include "common/v2s.h"

#include <gtest/gtest.h>

#include <tuple>

#include "sim/rng.h"

namespace music {
namespace {

using sim::sec;

TEST(V2S, EncodesLockRefMajorOrder) {
  V2S v(sec(60));
  // Same lockRef: time orders.
  EXPECT_LT(v.encode(1, 0), v.encode(1, 1));
  EXPECT_LT(v.encode(1, 100), v.encode(1, 101));
  // Different lockRef: lockRef dominates regardless of time.
  EXPECT_LT(v.encode(1, sec(60) - 1), v.encode(2, 0));
  EXPECT_LT(v.encode(5, sec(60) - 1), v.encode(6, 0));
}

TEST(V2S, RoundTripsComponents) {
  V2S v(sec(60));
  ScalarTs s = v.encode(42, 12345);
  EXPECT_EQ(v.lock_ref_of(s), 42);
  EXPECT_EQ(v.time_of(s), 12345);
}

// §X-A2 lemma: the mapping preserves vector-timestamp order — property
// sweep over random pairs.
class V2sOrderLemma : public ::testing::TestWithParam<int64_t> {};

TEST_P(V2sOrderLemma, OrderPreservedForRandomPairs) {
  sim::Rng rng(static_cast<uint64_t>(GetParam()));
  V2S v(sec(60));
  for (int i = 0; i < 2000; ++i) {
    VectorTs t1{rng.uniform_int(1, 1'000'000), rng.uniform_int(0, sec(60) - 1)};
    VectorTs t2{rng.uniform_int(1, 1'000'000), rng.uniform_int(0, sec(60) - 1)};
    ScalarTs s1 = v.encode(t1.lock_ref, t1.time);
    ScalarTs s2 = v.encode(t2.lock_ref, t2.time);
    if (t1 == t2) {
      EXPECT_EQ(s1, s2);
    } else if (t1 < t2) {
      EXPECT_LT(s1, s2) << "t1=(" << t1.lock_ref << "," << t1.time << ") t2=("
                        << t2.lock_ref << "," << t2.time << ")";
    } else {
      EXPECT_GT(s1, s2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, V2sOrderLemma,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(V2S, OverflowBoundSupportsMillionsOfLockRefs) {
  // §X-A3: with T < 29 years, ~10 million lock references fit.  With our
  // default T = 60s the bound is astronomically larger.
  V2S v(sec(60));
  EXPECT_GT(v.max_lock_ref(), int64_t{10'000'000});
  // Encoding at the bound must not overflow into negative territory.
  LockRef max = v.max_lock_ref();
  EXPECT_GT(v.encode(max, sec(60) - 1), v.encode(max, 0));
  EXPECT_GT(v.encode(max, 0), v.encode(max - 1, sec(60) - 1));
}

TEST(V2S, OverflowBoundShrinksWithLargerT) {
  V2S small(sec(1));
  V2S large(sec(3600));
  EXPECT_GT(small.max_lock_ref(), large.max_lock_ref());
}

// §IV-B delta semantics: forcedRelease(r) must out-stamp every write of r
// and be out-stamped by every write of r+1.
TEST(V2S, ForcedReleaseStampBeatsReleasedHoldersWrites) {
  V2S v(sec(60));
  sim::Duration delta = 1;  // the paper's production value
  for (LockRef r : {int64_t{1}, int64_t{7}, int64_t{1000}}) {
    ScalarTs forced = v.encode_forced_release(r, delta);
    EXPECT_GT(forced, v.encode(r, sec(60) - 1));  // beats r's latest write
    EXPECT_LT(forced, v.encode(r + 1, 0));        // loses to r+1's earliest
  }
}

TEST(V2S, DeltaZeroTiesWithHoldersLatestWrite) {
  // delta = 0 can fail to overwrite a concurrent synchFlag reset — the race
  // the paper's delta > 0 requirement exists for.
  V2S v(sec(60));
  ScalarTs forced = v.encode_forced_release(3, 0);
  EXPECT_EQ(forced, v.encode(3, sec(60) - 1));  // tie: LWW keeps the reset
}

TEST(V2S, OversizedDeltaWouldMaskTheNextHolder) {
  // delta > T crosses into the next lockRef's span: the next holder's
  // synchFlag reset could no longer overwrite the forced set.
  V2S v(sec(60));
  ScalarTs forced = v.encode_forced_release(3, sec(60) + 1);
  EXPECT_GE(forced, v.encode(4, 0));  // ties (or beats) the next reset
}

TEST(V2S, SpanIsTwiceT) {
  V2S v(sec(60));
  EXPECT_EQ(v.span(), 2 * sec(60));
}

}  // namespace
}  // namespace music
