// Vocabulary type tests: vector timestamps, values, results.
#include "common/types.h"

#include <gtest/gtest.h>

namespace music {
namespace {

TEST(VectorTs, LockRefMajorComparison) {
  EXPECT_LT((VectorTs{1, 999}), (VectorTs{2, 0}));
  EXPECT_LT((VectorTs{1, 5}), (VectorTs{1, 6}));
  EXPECT_EQ((VectorTs{3, 3}), (VectorTs{3, 3}));
  EXPECT_GT((VectorTs{4, 0}), (VectorTs{3, 1'000'000}));
}

TEST(Value, LogicalSizeDrivesCostAccounting) {
  Value small("abc");
  EXPECT_EQ(small.size(), 3u);
  Value padded("x", 256 * 1024);  // benchmark value: tiny data, 256KB cost
  EXPECT_EQ(padded.size(), 256u * 1024u);
  EXPECT_EQ(padded.data, "x");
}

TEST(Value, EqualityComparesSemanticPayloadOnly) {
  EXPECT_EQ(Value("a", 10), Value("a", 999));
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(Result, OkCarriesValue) {
  auto r = Result<int>::Ok(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.status(), OpStatus::Ok);
  EXPECT_EQ(r.value(), 7);
}

TEST(Result, ErrCarriesStatus) {
  auto r = Result<int>::Err(OpStatus::NotLockHolder);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), OpStatus::NotLockHolder);
}

TEST(Status, ImplicitFromOpStatus) {
  Status s = OpStatus::Timeout;
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status(), OpStatus::Timeout);
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(OpStatus, AllValuesHaveNames) {
  for (auto s : {OpStatus::Ok, OpStatus::Timeout, OpStatus::Nack,
                 OpStatus::NotLockHolder, OpStatus::NotYetHolder,
                 OpStatus::CsExpired, OpStatus::NotFound, OpStatus::Conflict,
                 OpStatus::RetryExhausted}) {
    EXPECT_FALSE(to_string(s).empty());
    EXPECT_NE(to_string(s), "Unknown");
  }
}

TEST(OpStatus, RetryExhaustedIsFinal) {
  // The budget is already spent: callers must not loop on it.
  EXPECT_FALSE(is_retryable(OpStatus::RetryExhausted));
}

}  // namespace
}  // namespace music
